"""Hanf locality: Gaifman graph, r-neighbourhoods, r-types and ≈_{d,m}.

The key inexpressibility tool in the proofs of Theorem 2 (Claim 3) and
Theorem 3 is Hanf's technique in the finite version of Fagin, Stockmeyer and
Vardi [17]:

* the *Gaifman graph* of a structure connects two elements iff they occur
  together in some tuple;
* the *r-neighbourhood* ``N_r(a)`` of an element ``a`` is the substructure
  induced by all elements at Gaifman distance at most ``r`` from ``a``, with
  ``a`` as a distinguished point;
* the *r-type* of ``a`` is the isomorphism type of ``N_r(a)``;
* two structures are ``d,m``-equivalent (written ``G1 ≈_{d,m} G2``) if for
  every isomorphism type of a ``d``-neighbourhood, either both structures have
  the same number ``< m`` of elements realising it, or both have at least ``m``;
* (Hanf/FSV) for every quantifier rank ``k`` there are ``d`` and ``m``
  (``d = 3^k`` suffices, with ``m`` depending on ``k`` and the degree bound)
  such that ``d,m``-equivalent structures satisfy the same FO sentences of
  quantifier rank ``k``.

The paper instantiates this with the two-branch trees ``G_{n,n}`` and
``G_{n-1,n+1}``: for every ``r`` and every ``n > 2r + 1`` they realise every
``r``-type the same number of times, hence no FO sentence can separate the two
families — which kills weakest preconditions for same-generation queries.
This module provides the machinery; the experiment E5 and its benchmark check
the counting claim mechanically.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from ..db.database import Database
from .isomorphism import are_isomorphic, canonical_form

__all__ = [
    "gaifman_adjacency",
    "gaifman_distance",
    "ball",
    "neighborhood",
    "neighborhood_type",
    "type_census",
    "hanf_equivalent",
    "same_type_counts",
    "degree_bound",
    "hanf_threshold",
]


def gaifman_adjacency(db: Database) -> Dict[object, Set[object]]:
    """The Gaifman graph: ``a`` and ``b`` are adjacent iff they co-occur in a tuple."""
    adjacency: Dict[object, Set[object]] = {v: set() for v in db.active_domain}
    for _name, row in db:
        for x in row:
            for y in row:
                if x != y:
                    adjacency[x].add(y)
                    adjacency[y].add(x)
    return adjacency


def gaifman_distance(
    db: Database, source: object, adjacency: Optional[Dict[object, Set[object]]] = None
) -> Dict[object, int]:
    """Gaifman distances from ``source`` to every reachable element (BFS)."""
    if adjacency is None:
        adjacency = gaifman_adjacency(db)
    if source not in adjacency:
        return {source: 0}
    distances = {source: 0}
    queue = deque([source])
    while queue:
        current = queue.popleft()
        for neighbour in adjacency[current]:
            if neighbour not in distances:
                distances[neighbour] = distances[current] + 1
                queue.append(neighbour)
    return distances


def ball(
    db: Database,
    centre: object,
    radius: int,
    adjacency: Optional[Dict[object, Set[object]]] = None,
) -> FrozenSet[object]:
    """The set of elements at Gaifman distance at most ``radius`` from ``centre``."""
    distances = gaifman_distance(db, centre, adjacency)
    return frozenset(v for v, d in distances.items() if d <= radius)


def neighborhood(
    db: Database,
    centre: object,
    radius: int,
    adjacency: Optional[Dict[object, Set[object]]] = None,
) -> Tuple[Database, object]:
    """``N_r(centre)``: the induced substructure on the radius-``r`` ball, pointed at the centre."""
    members = ball(db, centre, radius, adjacency)
    return db.restrict_domain(members), centre


def neighborhood_type(
    db: Database,
    centre: object,
    radius: int,
    adjacency: Optional[Dict[object, Set[object]]] = None,
) -> Tuple:
    """The ``r``-type of ``centre``: a canonical form of its pointed ``r``-neighbourhood."""
    sub, point = neighborhood(db, centre, radius, adjacency)
    return canonical_form(sub, (point,))


def type_census(db: Database, radius: int) -> Dict[Tuple, int]:
    """How many elements of ``db`` realise each ``radius``-type.

    The census maps canonical ``r``-types to counts; it is the object the
    ``≈_{d,m}`` comparison works with.
    """
    adjacency = gaifman_adjacency(db)
    census: Dict[Tuple, int] = {}
    for element in db.active_domain:
        key = neighborhood_type(db, element, radius, adjacency)
        census[key] = census.get(key, 0) + 1
    return census


def same_type_counts(a: Database, b: Database, radius: int) -> bool:
    """Do ``a`` and ``b`` realise every ``radius``-type exactly the same number of times?

    This is the strong form used for the ``G_{n,n}`` vs ``G_{n-1,n+1}`` claim
    (equality of counts, not just thresholded equality).
    """
    return type_census(a, radius) == type_census(b, radius)


def hanf_equivalent(a: Database, b: Database, radius: int, threshold: int) -> bool:
    """``a ≈_{radius, threshold} b`` in the sense of Fagin–Stockmeyer–Vardi.

    For every ``radius``-type, either both structures have the same number of
    realisers and that number is below ``threshold``, or both have at least
    ``threshold`` realisers.
    """
    census_a = type_census(a, radius)
    census_b = type_census(b, radius)
    for key in set(census_a) | set(census_b):
        count_a = census_a.get(key, 0)
        count_b = census_b.get(key, 0)
        if count_a >= threshold and count_b >= threshold:
            continue
        if count_a != count_b:
            return False
    return True


def degree_bound(db: Database) -> int:
    """The maximal degree of the Gaifman graph of ``db``."""
    adjacency = gaifman_adjacency(db)
    return max((len(neighbours) for neighbours in adjacency.values()), default=0)


def hanf_threshold(quantifier_rank: int) -> Tuple[int, int]:
    """A sufficient ``(d, m)`` pair for sentences of the given quantifier rank.

    Following the paper's use of [17]: ``d = 3^k`` neighbourhoods suffice, and
    for the bounded-degree tree structures used in the proofs a threshold of
    ``m = k + 1`` realisers per type is enough (the proofs only ever need
    "the same number or both large").  The experiments use this pair when
    checking that the witness families are ``d,m``-equivalent.
    """
    if quantifier_rank < 0:
        raise ValueError("quantifier rank must be non-negative")
    return 3 ** quantifier_rank, quantifier_rank + 1
