"""Degree counts and the bounded degree property of first-order queries.

Libkin and Wong [27] show that first-order queries have the *bounded degree
property*: for a first-order query ``q`` there is a function ``f_q`` such
that the degree count of ``q(G)`` is at most ``f_q(d)`` whenever all degrees
of ``G`` are at most ``d``.  The paper uses this twice:

* Theorem 7: no first-order query computes transitive closure on chains
  (the tc of an ``n``-chain has ``n`` distinct out-degrees while the chain has
  degree count 2), hence the chain transaction admits no prerelations over FO;
* Corollary 2: the class ``WPC(FO)`` cannot be characterised by any degree
  bound ``f``.

Here ``dc(G)``, the *degree count*, is the number of distinct in-degrees plus
the number of distinct out-degrees occurring in ``G`` — exactly the measure of
[27] used by the paper.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Set, Tuple

from ..db.database import Database

__all__ = [
    "in_degrees",
    "out_degrees",
    "degree_count",
    "max_degree",
    "violates_degree_bound",
]


def out_degrees(db: Database) -> Dict[object, int]:
    """Out-degree of every active-domain node of a graph database."""
    degrees = {node: 0 for node in db.active_domain}
    for (x, _y) in db.edges:
        degrees[x] += 1
    return degrees


def in_degrees(db: Database) -> Dict[object, int]:
    """In-degree of every active-domain node of a graph database."""
    degrees = {node: 0 for node in db.active_domain}
    for (_x, y) in db.edges:
        degrees[y] += 1
    return degrees


def degree_count(db: Database) -> int:
    """``dc(G)``: the number of distinct in- and out-degrees occurring in ``G``.

    Following [27] (and the paper's usage) the in-degree spectrum and the
    out-degree spectrum are counted separately and added.
    """
    outs: Set[int] = set(out_degrees(db).values())
    ins: Set[int] = set(in_degrees(db).values())
    return len(outs) + len(ins)


def max_degree(db: Database) -> int:
    """The maximal in- or out-degree occurring in ``G`` (0 for the empty graph)."""
    outs = out_degrees(db)
    ins = in_degrees(db)
    values = list(outs.values()) + list(ins.values())
    return max(values, default=0)


def violates_degree_bound(
    query, inputs, bound_function
) -> Tuple[bool, Dict[str, int]]:
    """Check whether ``query`` violates a degree bound on the given inputs.

    Parameters
    ----------
    query:
        A callable mapping a graph :class:`Database` to a graph :class:`Database`.
    inputs:
        An iterable of input graphs.
    bound_function:
        A function ``f`` mapping the input's degree count to the allowed
        output degree count (the ``Q_f`` classes of Corollary 2).

    Returns
    -------
    (violated, evidence):
        ``violated`` is ``True`` if some input graph ``G`` has
        ``dc(query(G)) > f(dc(G))``; ``evidence`` records the worst ratio seen
        (input degree count, output degree count, allowed bound).
    """
    worst = {"input_dc": 0, "output_dc": 0, "allowed": 0}
    violated = False
    for graph in inputs:
        input_dc = degree_count(graph)
        output_dc = degree_count(query(graph))
        allowed = bound_function(input_dc)
        if output_dc > worst["output_dc"]:
            worst = {"input_dc": input_dc, "output_dc": output_dc, "allowed": allowed}
        if output_dc > allowed:
            violated = True
    return violated, worst
