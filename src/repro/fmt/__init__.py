"""Finite model theory toolkit.

Everything the paper's inexpressibility proofs rely on: isomorphism testing
and canonical forms, Hanf locality (Gaifman graph, r-neighbourhoods, r-types,
``≈_{d,m}`` equivalence), Ehrenfeucht–Fraïssé games, Gaifman basic local
sentences, degree counts / the bounded degree property, and the Ajtai–Fagin
game for monadic Σ¹₁.
"""

from .isomorphism import are_isomorphic, canonical_form, color_refinement
from .hanf import (
    ball,
    degree_bound,
    gaifman_adjacency,
    gaifman_distance,
    hanf_equivalent,
    hanf_threshold,
    neighborhood,
    neighborhood_type,
    same_type_counts,
    type_census,
)
from .ef_games import (
    distinguishing_rank,
    duplicator_wins,
    ef_equivalent_linear_orders,
    partial_isomorphism,
)
from .gaifman import (
    BasicLocalSentence,
    LocalFormula,
    adjacent_formula,
    dist_at_most,
    dist_greater_than,
    has_successor_local_formula,
    isolated_loop_local_formula,
    loop_local_formula,
    relativize_to_ball,
)
from .degree import (
    degree_count,
    in_degrees,
    max_degree,
    out_degrees,
    violates_degree_bound,
)
from .ajtai_fagin import (
    branch_nodes,
    collapse_branch,
    duplicator_wins_af_game,
    lemma4_bound,
    lemma4_find_pair,
    paper_duplicator_response,
)

__all__ = [
    "are_isomorphic",
    "canonical_form",
    "color_refinement",
    "ball",
    "degree_bound",
    "gaifman_adjacency",
    "gaifman_distance",
    "hanf_equivalent",
    "hanf_threshold",
    "neighborhood",
    "neighborhood_type",
    "same_type_counts",
    "type_census",
    "distinguishing_rank",
    "duplicator_wins",
    "ef_equivalent_linear_orders",
    "partial_isomorphism",
    "BasicLocalSentence",
    "LocalFormula",
    "adjacent_formula",
    "dist_at_most",
    "dist_greater_than",
    "has_successor_local_formula",
    "isolated_loop_local_formula",
    "loop_local_formula",
    "relativize_to_ball",
    "degree_count",
    "in_degrees",
    "max_degree",
    "out_degrees",
    "violates_degree_bound",
    "branch_nodes",
    "collapse_branch",
    "duplicator_wins_af_game",
    "lemma4_bound",
    "lemma4_find_pair",
    "paper_duplicator_response",
]
