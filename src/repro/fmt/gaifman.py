"""Gaifman locality: distance formulas, local formulas and basic local sentences.

Gaifman's theorem [18] states that every first-order sentence is equivalent to
a Boolean combination of *basic local sentences*

.. math::

    \\exists x_1 \\ldots \\exists x_s \\Big( \\bigwedge_i \\psi^{(r)}(x_i)
    \\; \\wedge \\; \\bigwedge_{i \\ne j} d(x_i, x_j) > 2r \\Big)

where ``psi^(r)(x)`` is an ``r``-local formula (all quantifiers relativised to
the radius-``r`` ball around ``x``).  The weakest-precondition algorithm of
Theorem 7 works on constraints presented in this form, and Corollary 3's rank
blow-up is stated for such sentences.

This module provides

* FO *distance formulas* ``dist_at_most(x, y, r)`` over the graph schema
  (Gaifman distance, i.e. undirected reachability within ``r`` steps),
* relativisation of a formula's quantifiers to the radius-``r`` ball around a
  free variable (producing an ``r``-local formula),
* :class:`BasicLocalSentence` — the syntactic object (s, r, local formula)
  together with conversion to an ordinary :class:`~repro.logic.syntax.Formula`
  and direct evaluation,
* ready-made local formulas used by the experiments (e.g. "x has a loop",
  "x has an out-neighbour").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from ..db.database import Database
from ..logic.builder import E
from ..logic.evaluation import evaluate
from ..logic.syntax import (
    And,
    Atom,
    Eq,
    Exists,
    Forall,
    Formula,
    Not,
    Or,
    TOP,
    make_and,
    make_or,
)
from ..logic.terms import Var

__all__ = [
    "adjacent_formula",
    "dist_at_most",
    "dist_greater_than",
    "relativize_to_ball",
    "LocalFormula",
    "BasicLocalSentence",
    "loop_local_formula",
    "has_successor_local_formula",
    "isolated_loop_local_formula",
]


def adjacent_formula(x: str, y: str) -> Formula:
    """Gaifman adjacency on graphs: ``E(x, y) | E(y, x)``."""
    return make_or(E(x, y), E(y, x))


def dist_at_most(x: str, y: str, radius: int, fresh_prefix: str = "_d") -> Formula:
    """An FO formula asserting Gaifman distance ``d(x, y) <= radius``.

    Built by unfolding: ``d <= 0`` is ``x = y``; ``d <= r`` is
    ``exists z . adjacent(x, z) & d(z, y) <= r - 1`` (or ``x = y``).
    The quantifier rank grows linearly with ``radius``, which is fine for the
    small radii used in experiments.
    """
    if radius < 0:
        raise ValueError("radius must be non-negative")
    if radius == 0:
        return Eq(Var(x), Var(y))
    z = f"{fresh_prefix}{radius}"
    closer = dist_at_most(z, y, radius - 1, fresh_prefix)
    step = Exists(z, make_and(adjacent_formula(x, z), closer))
    return make_or(Eq(Var(x), Var(y)), step)


def dist_greater_than(x: str, y: str, radius: int, fresh_prefix: str = "_d") -> Formula:
    """``d(x, y) > radius`` as a first-order formula."""
    return Not(dist_at_most(x, y, radius, fresh_prefix))


def relativize_to_ball(formula: Formula, centre: str, radius: int) -> Formula:
    """Relativise every quantifier of ``formula`` to the radius-``radius`` ball around ``centre``.

    ``exists y . phi`` becomes ``exists y . d(centre, y) <= radius & phi`` and
    ``forall y . phi`` becomes ``forall y . d(centre, y) <= radius -> phi``.
    The result is an ``r``-local formula around ``centre`` in Gaifman's sense.
    """
    if isinstance(formula, Exists):
        bound = dist_at_most(centre, formula.variable, radius)
        return Exists(
            formula.variable,
            make_and(bound, relativize_to_ball(formula.body, centre, radius)),
        )
    if isinstance(formula, Forall):
        bound = dist_at_most(centre, formula.variable, radius)
        return Forall(
            formula.variable,
            bound.implies(relativize_to_ball(formula.body, centre, radius)),
        )
    return formula.map_children(lambda child: relativize_to_ball(child, centre, radius))


@dataclass(frozen=True)
class LocalFormula:
    """An ``r``-local formula ``psi^(r)(x)``: a formula with one free variable
    whose quantifiers are (or are to be) relativised to the radius-``r`` ball
    around that variable."""

    variable: str
    radius: int
    body: Formula
    already_relativized: bool = False

    def as_formula(self) -> Formula:
        """The relativised first-order formula with ``variable`` free."""
        if self.already_relativized:
            return self.body
        return relativize_to_ball(self.body, self.variable, self.radius)

    def free_variable_check(self) -> None:
        frees = self.body.free_variables()
        if frees - {self.variable}:
            raise ValueError(
                f"local formula has unexpected free variables {sorted(frees - {self.variable})}"
            )

    def quantifier_rank(self) -> int:
        return self.as_formula().quantifier_rank()


@dataclass(frozen=True)
class BasicLocalSentence:
    """A Gaifman basic local sentence: ``s`` scattered witnesses of a local property.

    ``exists x_1 ... x_s . /\\_i psi^(r)(x_i)  &  /\\_{i<j} d(x_i, x_j) > 2r``
    """

    count: int
    radius: int
    local: LocalFormula

    def __post_init__(self) -> None:
        if self.count < 1:
            raise ValueError("a basic local sentence needs at least one witness (s >= 1)")
        if self.radius < 0:
            raise ValueError("radius must be non-negative")
        self.local.free_variable_check()

    def witness_names(self) -> List[str]:
        return [f"w{i + 1}" for i in range(self.count)]

    def as_formula(self) -> Formula:
        """The equivalent ordinary first-order sentence."""
        names = self.witness_names()
        locals_: List[Formula] = []
        base = self.local.as_formula()
        for name in names:
            locals_.append(base.substitute({self.local.variable: Var(name)}))
        scattering: List[Formula] = []
        for i in range(self.count):
            for j in range(i + 1, self.count):
                scattering.append(dist_greater_than(names[i], names[j], 2 * self.radius))
        body = make_and(*locals_, *scattering)
        result: Formula = body
        for name in reversed(names):
            result = Exists(name, result)
        return result

    def holds(self, db: Database) -> bool:
        """Direct evaluation (via the ordinary-formula translation)."""
        return evaluate(self.as_formula(), db)

    def quantifier_rank(self) -> int:
        return self.as_formula().quantifier_rank()


# ---------------------------------------------------------------------------
# stock local formulas used in experiments
# ---------------------------------------------------------------------------

def loop_local_formula(variable: str = "x") -> LocalFormula:
    """``E(x, x)`` — a 0-local property."""
    return LocalFormula(variable, 0, E(variable, variable), already_relativized=True)


def has_successor_local_formula(variable: str = "x", radius: int = 1) -> LocalFormula:
    """``exists y . E(x, y)`` as a 1-local formula."""
    return LocalFormula(variable, radius, Exists("y", E(variable, "y")))


def isolated_loop_local_formula(variable: str = "x", radius: int = 1) -> LocalFormula:
    """``x`` has a loop and no other incident edge (1-local)."""
    body = make_and(
        E(variable, variable),
        Forall(
            "y",
            make_or(
                Not(make_or(E(variable, "y"), E("y", variable))),
                Eq(Var("y"), Var(variable)),
            ),
        ),
    )
    return LocalFormula(variable, radius, body)
