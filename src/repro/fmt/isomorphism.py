"""Isomorphism of finite relational structures.

The finite-model-theory arguments of the paper constantly compare structures
up to isomorphism: Hanf ``r``-types are *isomorphism types* of neighbourhoods,
the generic enumeration of Theorem 5 needs one representative per isomorphism
class, and the Ajtai–Fagin game compares coloured graphs.

This module provides

* :func:`are_isomorphic` — decision procedure for isomorphism of two finite
  databases (optionally with distinguished elements, i.e. pointed structures),
* :func:`canonical_form` — a canonical, hashable invariant that is *complete*
  for isomorphism (two structures have equal canonical forms iff they are
  isomorphic); it is computed by trying all bijections refined by an initial
  colour partition, so it is meant for the small structures (neighbourhoods,
  enumeration prefixes) the experiments use.

The implementation refines candidate bijections with iterated degree
sequences (a 1-dimensional Weisfeiler–Leman colouring) before falling back to
backtracking, which keeps the common cases fast.
"""

from __future__ import annotations

import itertools
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from ..db.database import Database

__all__ = ["are_isomorphic", "canonical_form", "color_refinement"]


def _facts_by_element(db: Database) -> Dict[object, List[Tuple[str, int, Tuple[object, ...]]]]:
    """For each domain element, the facts it participates in with its positions."""
    facts: Dict[object, List[Tuple[str, int, Tuple[object, ...]]]] = {
        v: [] for v in db.active_domain
    }
    for name, row in db:
        for position, value in enumerate(row):
            facts[value].append((name, position, row))
    return facts


def color_refinement(
    db: Database,
    distinguished: Sequence[object] = (),
    rounds: Optional[int] = None,
) -> Dict[object, int]:
    """Iterated colour refinement (1-WL) of the elements of ``db``.

    Starts from a colouring by (is it the i-th distinguished element?,
    per-relation per-position degree) and refines by multiset of neighbour
    colours until stable.  The result is an isomorphism-invariant colouring
    used both to prune isomorphism search and as a cheap invariant.
    """
    domain = sorted(db.active_domain, key=repr)
    if not domain:
        return {}
    # initial colour: distinguished index (or -1) plus degree vector
    initial: Dict[object, Tuple] = {}
    for v in domain:
        degree_vector = []
        for rel in db.schema:
            rows = db.relation(rel.name)
            for position in range(rel.arity):
                degree_vector.append(sum(1 for row in rows if row[position] == v))
        try:
            dist_index = list(distinguished).index(v)
        except ValueError:
            dist_index = -1
        initial[v] = (dist_index, tuple(degree_vector))
    colors = _normalise(initial)
    max_rounds = rounds if rounds is not None else len(domain)
    for _ in range(max_rounds):
        signature: Dict[object, Tuple] = {}
        for v in domain:
            neighbour_multiset = []
            for rel in db.schema:
                for row in db.relation(rel.name):
                    if v in row:
                        neighbour_multiset.append(
                            (rel.name, tuple(colors[u] for u in row),
                             tuple(i for i, u in enumerate(row) if u == v))
                        )
            signature[v] = (colors[v], tuple(sorted(neighbour_multiset)))
        refined = _normalise(signature)
        if refined == colors:
            break
        colors = refined
    return colors


def _normalise(raw: Dict[object, Tuple]) -> Dict[object, int]:
    """Replace arbitrary colour signatures by small consecutive integers."""
    ordered = sorted(set(raw.values()), key=repr)
    index = {signature: i for i, signature in enumerate(ordered)}
    return {v: index[signature] for v, signature in raw.items()}


def are_isomorphic(
    a: Database,
    b: Database,
    distinguished_a: Sequence[object] = (),
    distinguished_b: Sequence[object] = (),
) -> bool:
    """Are ``a`` and ``b`` isomorphic (as pointed structures)?

    ``distinguished_a[i]`` must map to ``distinguished_b[i]``; this is what
    Hanf r-types need (the neighbourhood's centre is a distinguished point).
    """
    if a.schema != b.schema:
        return False
    if len(distinguished_a) != len(distinguished_b):
        return False
    dom_a = sorted(a.active_domain, key=repr)
    dom_b = sorted(b.active_domain, key=repr)
    if len(dom_a) != len(dom_b):
        return False
    for rel in a.schema:
        if len(a.relation(rel.name)) != len(b.relation(rel.name)):
            return False
    colors_a = color_refinement(a, distinguished_a)
    colors_b = color_refinement(b, distinguished_b)
    if sorted(colors_a.values()) != sorted(colors_b.values()):
        return False
    # group candidates by colour class
    candidates: Dict[object, List[object]] = {
        v: [u for u in dom_b if colors_b[u] == colors_a[v]] for v in dom_a
    }
    for v, u in zip(distinguished_a, distinguished_b):
        if v in candidates:
            if u not in candidates[v]:
                return False
            candidates[v] = [u]
    order = sorted(dom_a, key=lambda v: len(candidates[v]))
    return _extend({}, order, candidates, a, b)


def _extend(
    mapping: Dict[object, object],
    remaining: List[object],
    candidates: Dict[object, List[object]],
    a: Database,
    b: Database,
) -> bool:
    if not remaining:
        return _respects_all(mapping, a, b)
    v = remaining[0]
    used = set(mapping.values())
    for u in candidates[v]:
        if u in used:
            continue
        mapping[v] = u
        if _consistent_so_far(mapping, a, b) and _extend(mapping, remaining[1:], candidates, a, b):
            return True
        del mapping[v]
    return False


def _consistent_so_far(mapping: Dict[object, object], a: Database, b: Database) -> bool:
    """Partial check: facts entirely inside the mapped part must correspond."""
    mapped = set(mapping)
    for rel in a.schema:
        rows_b = b.relation(rel.name)
        for row in a.relation(rel.name):
            if all(value in mapped for value in row):
                image = tuple(mapping[value] for value in row)
                if image not in rows_b:
                    return False
    return True


def _respects_all(mapping: Dict[object, object], a: Database, b: Database) -> bool:
    """Full check: the bijection maps each relation of ``a`` onto that of ``b``."""
    for rel in a.schema:
        image = {tuple(mapping[value] for value in row) for row in a.relation(rel.name)}
        if image != set(b.relation(rel.name)):
            return False
    return True


def canonical_form(
    db: Database, distinguished: Sequence[object] = ()
) -> Tuple:
    """A hashable canonical form, equal for two structures iff they are isomorphic.

    The canonical form is the lexicographically smallest encoding of the
    structure over all relabellings of the domain by ``0..n-1`` that are
    consistent with the colour-refinement classes (all such relabellings are
    enumerated, so the form is exact; the refinement only prunes the search).
    Intended for small structures such as Hanf neighbourhoods.
    """
    domain = sorted(db.active_domain, key=repr)
    n = len(domain)
    if n == 0:
        return (tuple(db.schema.relation_names), len(distinguished))
    colors = color_refinement(db, distinguished)
    # order domain elements by colour class so permutations respect classes
    by_color: Dict[int, List[object]] = {}
    for v in domain:
        by_color.setdefault(colors[v], []).append(v)
    color_keys = sorted(by_color)
    best: Optional[Tuple] = None
    for permutation in _class_respecting_permutations(by_color, color_keys):
        labelling = {v: i for i, v in enumerate(permutation)}
        encoding = _encode(db, labelling, distinguished)
        if best is None or encoding < best:
            best = encoding
    return best  # type: ignore[return-value]


def _class_respecting_permutations(
    by_color: Dict[int, List[object]], color_keys: List[int]
):
    """All orderings of the domain that list colour classes in order and permute within."""
    per_class = [list(itertools.permutations(by_color[key])) for key in color_keys]
    for choice in itertools.product(*per_class):
        ordering: List[object] = []
        for group in choice:
            ordering.extend(group)
        yield ordering


def _encode(
    db: Database, labelling: Dict[object, int], distinguished: Sequence[object]
) -> Tuple:
    relations = []
    for rel in db.schema:
        rows = sorted(
            tuple(labelling[value] for value in row) for row in db.relation(rel.name)
        )
        relations.append((rel.name, tuple(rows)))
    points = tuple(labelling.get(value, -1) for value in distinguished)
    return (tuple(relations), points, len(labelling))
