"""Ehrenfeucht–Fraïssé games.

The EF game is the workhorse behind every FO-inexpressibility claim in the
paper: the duplicator wins the ``k``-round game on structures ``A`` and ``B``
iff ``A`` and ``B`` satisfy the same FO sentences of quantifier rank ``k``.

This module implements

* :func:`duplicator_wins` — exact decision of the ``k``-round game by
  memoised game-tree search (exponential in ``k``; fine for the small
  structures and ranks the experiments use),
* :func:`distinguishing_rank` — the smallest ``k`` for which the spoiler wins
  (or ``None`` up to a bound),
* :func:`partial_isomorphism` — the winning condition (is a pair of tuples a
  partial isomorphism?),
* :func:`ef_equivalent_linear_orders` — the classical fact, used in the proof
  of Theorem 3, that two linear orders of length ``>= 2^k`` are
  ``k``-equivalent (implemented both via the game and via the known
  arithmetic criterion, so the theory and the search can be cross-checked).

Colored structures are just databases with extra unary relations, so the
Ajtai–Fagin harness (:mod:`repro.fmt.ajtai_fagin`) reuses this module
unchanged.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Dict, List, Optional, Sequence, Tuple

from ..db.database import Database

__all__ = [
    "partial_isomorphism",
    "duplicator_wins",
    "distinguishing_rank",
    "ef_equivalent_linear_orders",
]


def partial_isomorphism(
    a: Database,
    b: Database,
    pebbles_a: Sequence[object],
    pebbles_b: Sequence[object],
) -> bool:
    """Is ``pebbles_a -> pebbles_b`` a partial isomorphism between ``a`` and ``b``?

    The map must be well defined, injective, and preserve (in both directions)
    every relation of the schema restricted to the pebbled elements.
    """
    if a.schema != b.schema:
        return False
    if len(pebbles_a) != len(pebbles_b):
        return False
    mapping: Dict[object, object] = {}
    inverse: Dict[object, object] = {}
    for x, y in zip(pebbles_a, pebbles_b):
        if mapping.get(x, y) != y or inverse.get(y, x) != x:
            return False
        mapping[x] = y
        inverse[y] = x
    for rel in a.schema:
        rows_a = a.relation(rel.name)
        rows_b = b.relation(rel.name)
        arity = rel.arity
        pebbled_a = list(mapping)
        # Check every tuple over pebbled elements in both directions.
        for row in _tuples_over(pebbled_a, arity):
            image = tuple(mapping[value] for value in row)
            if (row in rows_a) != (image in rows_b):
                return False
    return True


def _tuples_over(elements: Sequence[object], arity: int):
    if arity == 1:
        for x in elements:
            yield (x,)
        return
    if arity == 2:
        for x in elements:
            for y in elements:
                yield (x, y)
        return
    # general case
    import itertools

    yield from itertools.product(elements, repeat=arity)


def duplicator_wins(
    a: Database,
    b: Database,
    rounds: int,
    pebbles_a: Sequence[object] = (),
    pebbles_b: Sequence[object] = (),
) -> bool:
    """Does the duplicator win the ``rounds``-round EF game from this position?

    The position is given by the already-pebbled elements.  The empty position
    with ``rounds = k`` decides agreement on all sentences of quantifier rank
    ``k``.  The search memoises on (remaining rounds, canonical position key),
    which is sound because positions differing only in pebble identity but
    equal as pairs behave identically.
    """
    if a.schema != b.schema:
        return False
    if not partial_isomorphism(a, b, pebbles_a, pebbles_b):
        return False
    domain_a = sorted(a.active_domain, key=repr)
    domain_b = sorted(b.active_domain, key=repr)

    memo: Dict[Tuple, bool] = {}

    def play(position: Tuple[Tuple[object, ...], Tuple[object, ...]], remaining: int) -> bool:
        peb_a, peb_b = position
        key = (remaining, peb_a, peb_b)
        if key in memo:
            return memo[key]
        if remaining == 0:
            result = True  # partial isomorphism already verified on entry
            memo[key] = result
            return result
        # Spoiler chooses a structure and an element; duplicator must respond.
        result = True
        # spoiler plays in A
        for x in domain_a:
            if not any(
                partial_isomorphism(a, b, peb_a + (x,), peb_b + (y,))
                and play((peb_a + (x,), peb_b + (y,)), remaining - 1)
                for y in domain_b
            ):
                result = False
                break
        if result:
            # spoiler plays in B
            for y in domain_b:
                if not any(
                    partial_isomorphism(a, b, peb_a + (x,), peb_b + (y,))
                    and play((peb_a + (x,), peb_b + (y,)), remaining - 1)
                    for x in domain_a
                ):
                    result = False
                    break
        memo[key] = result
        return result

    # Empty structures: if one domain is empty and the other is not, the spoiler
    # wins as soon as he has a move (any round); if both are empty the duplicator wins.
    if rounds > 0 and (not domain_a) != (not domain_b):
        return False
    return play((tuple(pebbles_a), tuple(pebbles_b)), rounds)


def distinguishing_rank(
    a: Database, b: Database, max_rounds: int
) -> Optional[int]:
    """The least ``k <= max_rounds`` such that the spoiler wins the ``k``-round game.

    Returns ``None`` when the duplicator wins every game up to ``max_rounds``,
    i.e. no FO sentence of quantifier rank ``<= max_rounds`` distinguishes the
    structures.
    """
    for k in range(max_rounds + 1):
        if not duplicator_wins(a, b, k):
            return k
    return None


def ef_equivalent_linear_orders(size_a: int, size_b: int, rounds: int) -> bool:
    """The classical criterion for linear orders (Rosenstein [34]).

    Two finite linear orders of sizes ``size_a`` and ``size_b`` satisfy the
    same FO(<) sentences of quantifier rank ``k`` iff ``size_a = size_b`` or
    both sizes are at least ``2^k - 1``.  The proof of Theorem 3 uses the
    coarser statement that orders of size ``> 2^k`` are indistinguishable;
    experiment E6 cross-checks this criterion against the game search on the
    corresponding successor/order structures.
    """
    if size_a < 0 or size_b < 0:
        raise ValueError("sizes must be non-negative")
    if size_a == size_b:
        return True
    threshold = 2 ** rounds - 1
    return size_a >= threshold and size_b >= threshold
