"""The concurrent transaction service: MVCC + WPC admission + group commit.

This package is the serving layer the ROADMAP's north star asks for: it turns
the single-writer :class:`~repro.db.storage.Store` into a multi-client
transaction processor while keeping the paper's guarantee — integrity
constraints stay true on every committed state — at the lowest runtime cost
the theory allows.

Quick orientation:

* :mod:`repro.service.snapshots` — MVCC: pinned ``(version, Database)``
  snapshots, tracked read/write transaction handles, and delta-based
  optimistic conflict validation (incremental predicate re-checks through
  :mod:`repro.engine.delta`);
* :mod:`repro.service.admission` — WPC-verified admission: registered
  transaction shapes are classified once (``static`` / ``guarded`` /
  ``runtime``, see :func:`repro.core.wpc.classify_preservation`) and the
  verdict cache decides the constraint work of every commit;
* :mod:`repro.service.scheduler` — the service itself: optimistic parallel
  execution, a leader/follower **group-commit** pipeline batching committed
  deltas into one ``apply_delta`` on the canonical store, conflict retries
  with a serial fallback, and fail-fast timeouts;
* :mod:`repro.service.workloads` — the scenario library (read-heavy,
  write-heavy, constraint-heavy, mixed) and the threaded driver + serial
  baseline behind the E16 benchmark.

Isolation level: **serializable** — every committed history is equivalent to
executing the committed transactions serially in commit order (stress-tested
by ``tests/service/test_serializability.py`` under ``REPRO_DELTA=verify``).

The ``REPRO_SERVICE_WORKERS`` environment variable selects the default
worker-thread count of the workload driver (see
:func:`~repro.service.scheduler.default_workers`).
"""

from .admission import AdmissionController, TransactionTemplate
from .scheduler import (
    WORKERS_ENV,
    ServiceStats,
    TransactionService,
    TxnOutcome,
    default_workers,
)
from .snapshots import (
    ReadSet,
    ServiceError,
    SnapshotManager,
    SnapshotTransaction,
    validate,
)
from .workloads import (
    SEED_ENV,
    default_seed,
    NO_LOOPS,
    NO_TRIANGLES,
    SCENARIOS,
    WorkItem,
    WorkloadReport,
    build_service,
    build_streams,
    forward_graph,
    run_serial_baseline,
    run_workload,
    standard_constraints,
    standard_templates,
)

__all__ = [
    "AdmissionController",
    "TransactionTemplate",
    "WORKERS_ENV",
    "ServiceStats",
    "TransactionService",
    "TxnOutcome",
    "default_workers",
    "ReadSet",
    "ServiceError",
    "SnapshotManager",
    "SnapshotTransaction",
    "validate",
    "NO_LOOPS",
    "NO_TRIANGLES",
    "SCENARIOS",
    "SEED_ENV",
    "default_seed",
    "WorkItem",
    "WorkloadReport",
    "build_service",
    "build_streams",
    "forward_graph",
    "run_serial_baseline",
    "run_workload",
    "standard_constraints",
    "standard_templates",
]
