"""MVCC snapshots: versioned reads, tracked transactions, optimistic validation.

The service runs every client transaction against an **immutable snapshot**
of the store — a pinned ``(version, Database)`` pair — while other clients
commit freely.  Whether the transaction may then commit is decided by
*delta-based optimistic validation*: the composition of the deltas committed
since the transaction's snapshot (its **foreign delta**) is checked against
the transaction's read set and write delta.

Three layers live here:

* :class:`SnapshotManager` — owns the version chain on top of
  :meth:`repro.db.storage.Store.pin`: it remembers the per-commit
  :class:`~repro.db.delta.Delta` of a bounded window of recent versions and
  can answer "what happened between version ``v`` and now?" as one composed
  delta (O(|changes|), never O(database)).
* :class:`SnapshotTransaction` — the client handle.  Reads go through it and
  are *tracked* (rows probed, relations scanned, predicates evaluated);
  writes are buffered into a private delta and overlaid on every read
  (read-your-own-writes), mirroring the store's own transaction semantics.
* :func:`validate` — the conflict test: write-write overlap on touched rows
  (:meth:`Delta.overlaps`), row- and relation-level read-write overlap, and
  **incremental predicate re-validation** — each predicate the transaction
  read is re-evaluated under the foreign delta through the engine's delta
  rules (:func:`repro.engine.delta.evaluate_under`, with the transaction's
  own writes at read time layered on top), so a predicate read only
  conflicts when a concurrent commit actually *changed its truth value*,
  not merely because it touched the same relation.

The guarantee (checked end-to-end by the serializability stress suite): a
history of committed transactions is equivalent to executing them serially in
commit order.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Callable, Deque, Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from ..db.database import Database
from ..db.delta import Delta
from ..db.storage import Store
from ..engine.backend import Backend, active_backend
from ..logic.signature import EMPTY_SIGNATURE, Signature
from ..logic.syntax import Formula
from ..obs import metrics as _metrics
from ..obs import trace as _trace
from ..transactions.base import Transaction

__all__ = [
    "ServiceError",
    "ReadSet",
    "SnapshotTransaction",
    "SnapshotManager",
    "validate",
]

Row = Tuple[object, ...]


class ServiceError(RuntimeError):
    """Raised on misuse of the transaction service or one of its handles."""


class ReadSet:
    """Everything a transaction observed: the input to conflict validation.

    ``rows`` records point probes (:meth:`SnapshotTransaction.contains`),
    ``scanned`` whole-relation reads, and ``predicates`` formula evaluations
    — each with the transaction's own delta *at read time*, so validation can
    reconstruct exactly the state the value was observed against.
    ``opaque`` marks a transaction whose reads were not tracked (a paper-style
    function on databases): validation must then be maximally conservative.
    """

    __slots__ = ("scanned", "rows", "predicates", "opaque")

    def __init__(self) -> None:
        self.scanned: Set[str] = set()
        self.rows: Dict[str, Set[Row]] = {}
        # (formula, own-delta at read time) -> observed truth value
        self.predicates: Dict[Tuple[Formula, Delta], bool] = {}
        self.opaque = False

    def __repr__(self) -> str:
        probes = sum(len(r) for r in self.rows.values())
        return (
            f"ReadSet(scans={sorted(self.scanned)}, probes={probes}, "
            f"predicates={len(self.predicates)}, opaque={self.opaque})"
        )


class SnapshotTransaction:
    """A client transaction pinned to one immutable snapshot version.

    All reads are **read-your-own-writes**: the handle's buffered write delta
    is overlaid on the pinned snapshot (via ``apply_delta``, so the view
    provenance-chains off the snapshot and incremental evaluation applies).
    All reads are also **tracked** in :attr:`reads`, which is what makes
    fine-grained optimistic validation possible — prefer the handle API over
    :meth:`apply`, whose reads are opaque and validate conservatively.
    """

    def __init__(
        self,
        base: Database,
        version: int,
        signature: Signature = EMPTY_SIGNATURE,
        backend: Optional[Backend] = None,
    ):
        self.base = base
        self.version = version
        self.signature = signature
        self.backend = backend if backend is not None else active_backend()
        self.reads = ReadSet()
        self._ins: Dict[str, Set[Row]] = {}
        self._del: Dict[str, Set[Row]] = {}
        self._write_count = 0
        self._view: Optional[Tuple[int, Database]] = None

    # -- the transaction's own state --------------------------------------------

    def delta(self) -> Delta:
        """The buffered write delta (normalized against the snapshot)."""
        return Delta(self._ins, self._del)

    @property
    def db(self) -> Database:
        """The read-your-own-writes view: snapshot ⊕ own writes (cached)."""
        if self._view is not None and self._view[0] == self._write_count:
            return self._view[1]
        delta = self.delta()
        view = self.base if delta.is_empty() else self.base.apply_delta(delta)
        self._view = (self._write_count, view)
        return view

    # -- tracked reads -----------------------------------------------------------

    def contains(self, relation: str, row: Sequence[object]) -> bool:
        """Point probe; recorded as a row-level read."""
        validated = self.base.schema[relation].validate_tuple(row)
        self.reads.rows.setdefault(relation, set()).add(validated)
        if validated in self._ins.get(relation, ()):
            return True
        if validated in self._del.get(relation, ()):
            return False
        return validated in self.base.relation(relation)

    def scan(self, relation: str) -> FrozenSet[Row]:
        """Whole-relation read; recorded as a relation-level scan."""
        self.reads.scanned.add(relation)
        return self.db.relation(relation)

    def evaluate(self, formula: Formula, **assignment: object) -> bool:
        """Evaluate a sentence against the RYOW view; recorded as a predicate read.

        The recorded entry keeps the transaction's own delta as of this read,
        so validation re-checks the predicate against *exactly* the state it
        was observed on, shifted by the foreign delta.
        """
        if assignment:
            from ..logic.terms import Const

            formula = formula.substitute(
                {name: Const(value) for name, value in assignment.items()}
            )
        value = self.backend.evaluate(formula, self.db, signature=self.signature)
        self.reads.predicates.setdefault((formula, self.delta()), value)
        return value

    # -- buffered writes ---------------------------------------------------------

    def insert(self, relation: str, row: Sequence[object]) -> bool:
        """Buffer an insert; returns ``True`` if the effective view changed.

        The effectiveness probe (is the row already present?) is itself a
        tracked read: whether this write made it into the delta depends on
        it, so validation must notice a foreign commit flipping it.
        """
        validated = self.base.schema[relation].validate_tuple(row)
        self.reads.rows.setdefault(relation, set()).add(validated)
        removed = self._del.get(relation)
        if removed is not None and validated in removed:
            removed.discard(validated)
        elif (
            validated in self._ins.get(relation, ())
            or validated in self.base.relation(relation)
        ):
            return False
        else:
            self._ins.setdefault(relation, set()).add(validated)
        self._write_count += 1
        return True

    def delete(self, relation: str, row: Sequence[object]) -> bool:
        """Buffer a delete; returns ``True`` if the effective view changed.

        The effectiveness probe is a tracked read, exactly as for
        :meth:`insert`.
        """
        validated = self.base.schema[relation].validate_tuple(row)
        self.reads.rows.setdefault(relation, set()).add(validated)
        added = self._ins.get(relation)
        if added is not None and validated in added:
            added.discard(validated)
        elif (
            validated in self._del.get(relation, ())
            or validated not in self.base.relation(relation)
        ):
            return False
        else:
            self._del.setdefault(relation, set()).add(validated)
        self._write_count += 1
        return True

    def apply(self, transaction: Transaction) -> Database:
        """Run a paper-style transaction (a function on databases) in this handle.

        The post-state's delta (recovered through ``apply_delta`` provenance)
        is merged into the write buffer.  The transaction's *reads* cannot be
        observed from the outside, so the read set is marked opaque —
        validation then treats any non-empty foreign delta as a conflict.
        Prefer the tracked handle API when the transaction can be expressed
        through it.
        """
        before = self.db
        after = transaction.apply(before)
        delta = Delta.between(before, after)
        if delta is None:
            delta = Delta.from_databases(before, after)
        for name, rows in delta.deleted.items():
            for row in rows:
                self.delete(name, row)
        for name, rows in delta.inserted.items():
            for row in rows:
                self.insert(name, row)
        self.reads.opaque = True
        return self.db

    def __repr__(self) -> str:
        return (
            f"SnapshotTransaction(version={self.version}, "
            f"delta={self.delta()!r}, reads={self.reads!r})"
        )


def validate(
    reads: ReadSet,
    write_delta: Delta,
    foreign: Delta,
    base: Database,
    signature: Signature = EMPTY_SIGNATURE,
    backend: Optional[Backend] = None,
) -> Optional[str]:
    """Decide whether a transaction survives the foreign delta.

    Returns ``None`` when the transaction is still valid — committing its
    delta after the foreign one is equivalent to having run it serially — or
    a human-readable conflict reason otherwise.  Checks, cheapest first:

    1. opaque read sets conflict with any non-empty foreign delta;
    2. write-write: a row touched by both deltas;
    3. scans: the foreign delta touched a relation read wholesale;
    4. row probes: the foreign delta touched a row that was probed;
    5. predicates: incremental re-evaluation — the foreign delta changed the
       observed truth value of a formula the transaction read (evaluated on
       ``base ⊕ foreign ⊕ own-writes-at-read-time``, all provenance-chained,
       so the engine answers through its delta rules).
    """
    if foreign.is_empty():
        return None
    _metrics.get_registry().counter("service.validate.checks").inc()
    with _trace.span("service.validate", foreign_rows=len(foreign)) as span:
        reason = _validate(reads, write_delta, foreign, base, signature, backend)
        span.annotate(result="ok" if reason is None else "conflict")
        return reason


def _validate(
    reads: ReadSet,
    write_delta: Delta,
    foreign: Delta,
    base: Database,
    signature: Signature,
    backend: Optional[Backend],
) -> Optional[str]:
    if reads.opaque:
        return "opaque read set: concurrent commits are indistinguishable from conflicts"
    common = write_delta.overlapping_rows(foreign)
    if common:
        name = next(iter(common))
        return f"write-write overlap on {name!r}: {sorted(common[name], key=repr)[:3]}"
    foreign_touched = foreign.touched()
    for relation in reads.scanned:
        if relation in foreign_touched:
            return f"scan of {relation!r} invalidated by a foreign write"
    for relation, rows in reads.rows.items():
        clash = rows & foreign.rows_in(relation)
        if clash:
            return f"read row overwritten in {relation!r}: {sorted(clash, key=repr)[:3]}"
    if reads.predicates:
        from ..engine.delta import evaluate_under

        if backend is None:
            backend = active_backend()
        shifted = base.apply_delta(foreign)
        for (formula, own), value in reads.predicates.items():
            # the predicate was observed on `base ⊕ own`; its value at the
            # commit point is `(base ⊕ foreign) ⊕ own` — evaluate_under keeps
            # the whole chain on the engine's incremental path
            if evaluate_under(formula, shifted, own, signature, backend) != value:
                return f"predicate changed under foreign delta: {formula}"
    return None


class SnapshotManager:
    """The version chain: pinned snapshots plus a window of per-commit deltas.

    Every committed batch appends ``(version, delta)``; the composition of
    the suffix after version ``v`` is the foreign delta of a transaction
    pinned at ``v``.  The window is bounded (``history_limit`` commits): a
    transaction older than the window cannot be validated precisely and is
    treated as conflicted (it retries against a fresh snapshot), which keeps
    memory O(window · delta) on an unbounded commit stream.

    Durable stores stay coherent for free: a store recovered from a WAL
    resumes at its recovered version ``N`` (not 0), the history window starts
    empty, and ``foreign_delta`` for any pin at ``>= N`` is the empty delta —
    exactly as if the service had just started on a fresh store whose version
    happened to be ``N``.  Engine-level checkpoints happen inside the store's
    commit lock, so a ``pin()`` can never observe a half-checkpointed state.
    """

    def __init__(self, store: Store, history_limit: int = 1024):
        self._store = store
        self._lock = threading.Lock()
        self._history: Deque[Tuple[int, Delta]] = deque(maxlen=history_limit)

    @property
    def store(self) -> Store:
        return self._store

    def begin(
        self,
        signature: Signature = EMPTY_SIGNATURE,
        backend: Optional[Backend] = None,
    ) -> SnapshotTransaction:
        """A new transaction handle pinned to the current committed version."""
        version, snapshot = self._store.pin()
        return SnapshotTransaction(snapshot, version, signature, backend)

    def record(self, version: int, delta: Delta) -> None:
        """Remember the delta that produced ``version`` (called under the commit lock)."""
        with self._lock:
            self._history.append((version, delta))

    def foreign_delta(self, since_version: int) -> Optional[Delta]:
        """The net delta committed after ``since_version``, or ``None``.

        ``None`` means the window no longer covers the pinned version — the
        caller must treat the transaction as conflicted.  The common cases
        are O(1) (nothing committed) and O(suffix) otherwise.
        """
        with self._lock:
            head = self._store.version
            if since_version >= head:
                return Delta()
            composed: Optional[Delta] = None
            expected = since_version + 1
            for version, delta in self._history:
                if version <= since_version:
                    continue
                if version != expected:
                    return None  # a commit fell out of (or bypassed) the window
                composed = delta if composed is None else composed.then(delta)
                expected = version + 1
            if expected != head + 1:
                return None  # the store advanced through a commit we never saw
            return composed
