"""Workload scenarios and the threaded driver for the transaction service.

The scenario library models the referral-graph workload used across the
benchmarks (a single binary relation ``E``, the ``no-loops`` and
``no-triangles`` integrity constraints) at four contention profiles:

* ``read-heavy`` — mostly point probes and degree predicates;
* ``write-heavy`` — mostly safe forward-edge inserts and deletes;
* ``constraint-heavy`` — a large share of *risky* arbitrary-edge inserts
  (loops, back-edges), exercising the guarded admission path and rejections;
* ``mixed`` — a blend of all of the above (the E16 headline scenario);
* ``hot-key`` — the mixed blend with *Zipfian* account selection: a handful
  of hot accounts absorb most of the traffic, so concurrent writers collide
  on the same edges and the optimistic validation path actually retries
  (non-zero ``abort_rate``), where the uniform scenarios almost never do;
* ``flash-crowd`` — bursty contention: every client's traffic concentrates
  on one small *crowd* of accounts for a window of operations, then the
  crowd jumps to a fresh set of accounts (a viral post, a market open).
  Unlike ``hot-key``'s stationary skew, the hot set *moves*, so contention
  arrives in spikes — the scenario that makes tail latency (p99) diverge
  from the median even when mean throughput looks healthy.

Drivers report tail latency per run: :class:`WorkloadReport` carries the
p50/p95/p99 of per-operation completion times (one ``service.execute`` call
from first attempt through retries to a definitive outcome), which is what
the E16 benchmark JSON surfaces per scenario.

Every operation is a deterministic closure over the tracked
:class:`~repro.service.snapshots.SnapshotTransaction` API, tagged with the
admission template it instantiates, so the same streams can be fed to the
concurrent service and to the serial baseline.  Streams are generated from an
explicit seed (``--seed`` in ``benchmarks/run_all.py``), which is what makes
E16 throughput numbers reproducible.

The serial baseline (:func:`run_serial_baseline`) is the pre-service
execution model: one transaction at a time against the store, every
constraint re-checked on the post-state before each individual commit —
exactly :class:`~repro.core.maintenance.RuntimeCheckPolicy`, including the
engine's incremental re-checks, so the comparison isolates what the service
layer itself adds (admission fast paths, group commit, overlap of optimistic
execution) rather than re-measuring PR-2's delta rules.
"""

from __future__ import annotations

import os
import random
import threading
import time
from bisect import bisect_left
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..core.maintenance import Constraint
from ..db.database import Database
from ..db.schema import GRAPH_SCHEMA
from ..db.storage import Store
from ..logic.syntax import And, Atom, Eq, Exists, Not, make_and
from ..logic.terms import Const, Var
from ..obs import metrics as _metrics
from ..transactions.fo_transactions import DeleteWhere, FOProgram, InsertTuple
from .admission import TransactionTemplate
from .scheduler import TransactionService, TxnOutcome, default_workers
from .snapshots import ServiceError, SnapshotTransaction

__all__ = [
    "NO_LOOPS",
    "NO_TRIANGLES",
    "SCENARIOS",
    "SEED_ENV",
    "default_seed",
    "WorkItem",
    "WorkloadReport",
    "standard_templates",
    "standard_constraints",
    "forward_graph",
    "build_service",
    "build_streams",
    "run_workload",
    "run_serial_baseline",
]


def _parse():
    from ..logic.parser import parse

    return parse


NO_LOOPS = _parse()("forall x . ~E(x, x)")
NO_TRIANGLES = _parse()(
    "forall x . forall y . forall z . (E(x, y) & E(y, z)) -> ~E(z, x)"
)

SCENARIOS = (
    "read-heavy",
    "write-heavy",
    "constraint-heavy",
    "mixed",
    "hot-key",
    "flash-crowd",
)

#: environment knob: the workload seed (set by ``benchmarks/run_all.py --seed``
#: and by the test harness, so a failing run can be replayed exactly)
SEED_ENV = "REPRO_SEED"


def default_seed(fallback: int = 0) -> int:
    """The stream seed selected by ``REPRO_SEED`` (default ``fallback``)."""
    raw = os.environ.get(SEED_ENV, "").strip()
    if not raw:
        return fallback
    try:
        return int(raw)
    except ValueError:
        return fallback

#: operation mix per scenario: (read, link-forward, unlink, add-edge) weights
_MIXES: Dict[str, Tuple[float, float, float, float]] = {
    "read-heavy": (0.85, 0.10, 0.05, 0.00),
    "write-heavy": (0.20, 0.55, 0.25, 0.00),
    "constraint-heavy": (0.15, 0.30, 0.15, 0.40),
    "mixed": (0.50, 0.28, 0.12, 0.10),
    "hot-key": (0.20, 0.45, 0.25, 0.10),
    "flash-crowd": (0.25, 0.45, 0.20, 0.10),
}

#: Zipf exponent for the hot-key picker — well above 1, so the first few
#: accounts absorb most of the traffic and writers collide on their edges
_ZIPF_S = 1.5

#: flash-crowd burst shape: every pick lands inside a crowd of
#: ``_CROWD_SIZE`` accounts for ``_BURST_LEN`` consecutive picks, then the
#: crowd jumps to a fresh set — moving skew, not stationary skew
_CROWD_SIZE = 4
_BURST_LEN = 24


def standard_constraints() -> List[Constraint]:
    """The referral-graph integrity constraints of the benchmark workloads."""
    return [
        Constraint("no-loops", NO_LOOPS),
        Constraint("no-triangles", NO_TRIANGLES),
    ]


def _no_new_triangle_guard(a: object, b: object):
    """Hand-simplified guard: inserting ``(a, b)`` keeps ``no-triangles``.

    Under the invariant the only new violation an edge insert can create is a
    2-path ``b -> w -> a`` closing through the new edge (plus the degenerate
    loop ``a = b``) — the paper's closing-remark ``Delta``: far smaller than
    the mechanical ``wpc``, and verified against it at registration time.
    """
    return make_and(
        Not(Eq(Const(a), Const(b))),
        Not(
            Exists(
                "w",
                And(Atom("E", Const(b), Var("w")), Atom("E", Var("w"), Const(a))),
            )
        ),
    )


def _not_a_loop_guard(a: object, b: object):
    """Hand-simplified guard: inserting ``(a, b)`` keeps ``no-loops`` iff ``a != b``."""
    return Not(Eq(Const(a), Const(b)))


def _insert_edge_program(a: object, b: object) -> FOProgram:
    return FOProgram([InsertTuple("E", a, b)], name="add-edge")


def _link_forward_program(a: object, b: object) -> FOProgram:
    return FOProgram([InsertTuple("E", a, b)], name="link-forward")


def _unlink_program(a: object, b: object) -> FOProgram:
    condition = And(Eq(Var("x"), Const(a)), Eq(Var("y"), Const(b)))
    return FOProgram([DeleteWhere("E", ("x", "y"), condition)], name="unlink")


def standard_templates() -> List[TransactionTemplate]:
    """The admission templates the scenario library instantiates.

    * ``link-forward`` — insert one strictly forward edge (``a < b``); its
      instances preserve ``no-loops`` outright and need only the 2-path guard
      for ``no-triangles``;
    * ``unlink`` — delete one edge: statically safe for both constraints
      (universal constraints survive deletions);
    * ``add-edge`` — insert an *arbitrary* edge (loops and back-edges
      included): guarded for both constraints.
    """
    guards = {
        "no-loops": _not_a_loop_guard,
        "no-triangles": _no_new_triangle_guard,
    }
    return [
        TransactionTemplate(
            "link-forward",
            _link_forward_program,
            samples=((0, 1), (1, 2)),
            guards={"no-triangles": _no_new_triangle_guard},
        ),
        TransactionTemplate("unlink", _unlink_program, samples=((0, 1), (2, 1))),
        TransactionTemplate(
            "add-edge",
            _insert_edge_program,
            samples=((0, 1), (1, 0), (2, 2)),
            guards=guards,
        ),
    ]


def forward_graph(accounts: int, edges_per: int, seed: int = 1) -> Database:
    """A triangle-free, loop-free referral network: every edge points forward."""
    rng = random.Random(seed)
    edges = set()
    # only accounts*(accounts-1)/2 distinct forward pairs exist — cap the
    # target so a dense request saturates instead of spinning forever
    target = min(accounts * edges_per, accounts * (accounts - 1) // 2)
    while len(edges) < target:
        a, b = rng.randrange(accounts), rng.randrange(accounts)
        if a != b:
            edges.add((min(a, b), max(a, b)))
    return Database.graph(edges)


_ADMISSION_LOCK = threading.Lock()
_ADMISSION: Optional[Tuple["AdmissionController", List[Constraint]]] = None


def _standard_admission() -> Tuple["AdmissionController", List[Constraint]]:
    """One classified admission controller per process.

    Classification is the *offline* part of static verification (a bounded
    sweep per (template, constraint, sample)), so every service built by
    :func:`build_service` shares a single controller — the verdict cache is
    exactly as reusable as a prepared-statement cache.
    """
    global _ADMISSION
    with _ADMISSION_LOCK:
        if _ADMISSION is None:
            from .admission import AdmissionController

            constraints = standard_constraints()
            controller = AdmissionController(constraints)
            for template in standard_templates():
                controller.register(template)
            _ADMISSION = (controller, constraints)
        return _ADMISSION


def build_service(
    initial: Database,
    max_retries: int = 8,
    commit_timeout: float = 60.0,
    shards: Optional[int] = None,
    procs: Optional[int] = None,
    engine: Optional["StorageEngine"] = None,
) -> TransactionService:
    """A service over ``initial`` with the standard constraints and templates.

    The WPC classification of the standard templates is computed once per
    process and shared (see :func:`_standard_admission`), so repeated
    ``build_service`` calls — one per test, one per benchmark phase — pay for
    admission verdicts exactly once.

    By default the service evaluates on the ambient backend.  Passing
    ``shards`` (and optionally ``procs``, the ``REPRO_SHARD_PROCS``
    equivalent) builds a *dedicated* :class:`~repro.engine.parallel.
    ShardedBackend` owned by the service — call
    :meth:`~repro.service.scheduler.TransactionService.close` when done so
    its process pool shuts down promptly.

    ``engine`` selects the store's :class:`~repro.db.engines.StorageEngine`
    (default: the ``REPRO_DURABLE``/``REPRO_WAL_DIR`` environment choice).
    The service owns the store it builds here, so ``close()`` releases the
    engine's file handles.
    """
    from ..engine.backend import active_backend

    admission, constraints = _standard_admission()
    backend = None
    owns_backend = False
    if shards is not None or procs is not None:
        from ..engine.parallel import ShardedBackend

        backend = ShardedBackend(shards=shards, procs=procs)
        owns_backend = True
    ambient = backend if backend is not None else active_backend()
    store = Store(
        GRAPH_SCHEMA,
        initial,
        shards=getattr(ambient, "num_shards", None),
        engine=engine,
    )
    return TransactionService(
        store,
        constraints,
        admission=admission,
        max_retries=max_retries,
        commit_timeout=commit_timeout,
        backend=backend,
        owns_backend=owns_backend,
        # the store was built here, so service.close() must release it (it
        # may hold WAL handles under REPRO_DURABLE=on or an explicit engine)
        owns_store=True,
    )


# ---------------------------------------------------------------------------
# operation streams
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class WorkItem:
    """One client operation: a tracked closure plus its admission template."""

    kind: str
    template: Optional[str]
    params: Tuple
    fn: Callable[[SnapshotTransaction], object]


_OUT_DEGREE = Exists("y", Atom("E", Var("x"), Var("y")))

#: an account picker: () -> account id (uniform or Zipfian over the pool)
Picker = Callable[[], int]


def _uniform_picker(rng: random.Random, accounts: int) -> Picker:
    return lambda: rng.randrange(accounts)


def _zipf_cdf(accounts: int, s: float = _ZIPF_S) -> Tuple[float, ...]:
    """Cumulative Zipf(s) weights over ranks ``0..accounts-1``."""
    weights = [1.0 / ((rank + 1) ** s) for rank in range(accounts)]
    total = sum(weights)
    acc = 0.0
    cdf = []
    for weight in weights:
        acc += weight
        cdf.append(acc / total)
    cdf[-1] = 1.0
    return tuple(cdf)


_ZIPF_CDF_CACHE: Dict[Tuple[int, float], Tuple[float, ...]] = {}


def _zipf_picker(rng: random.Random, accounts: int, s: float = _ZIPF_S) -> Picker:
    """Zipfian account picker: rank == account id, so account 0 is hottest."""
    cdf = _ZIPF_CDF_CACHE.get((accounts, s))
    if cdf is None:
        cdf = _ZIPF_CDF_CACHE[(accounts, s)] = _zipf_cdf(accounts, s)
    return lambda: bisect_left(cdf, rng.random())


def _crowd_for(seed: int, burst: int, accounts: int) -> Tuple[int, ...]:
    """The crowd of burst ``burst``: shared by every client of the run.

    Derived from the *stream* seed (not the per-client rng), so clients at
    the same point of their streams converge on the same few accounts —
    that cross-client pile-up is what makes the burst contended.
    """
    crowd_rng = random.Random(0x9E3779B1 * (seed + 1) + burst)
    size = min(_CROWD_SIZE, accounts)
    return tuple(crowd_rng.sample(range(accounts), size))


def _flash_crowd_picker(rng: random.Random, accounts: int, seed: int) -> Picker:
    """Bursty picker: all picks land in a small crowd that periodically moves.

    Stateful — every ``_BURST_LEN`` picks the crowd jumps to a fresh set of
    accounts (deterministic in ``seed`` and the burst index), modelling a
    flash crowd: a stampede on a handful of keys, then calm, then the next
    stampede somewhere else.
    """
    state = {"picks": 0, "burst": 0, "crowd": _crowd_for(seed, 0, accounts)}

    def pick() -> int:
        if state["picks"] >= _BURST_LEN:
            state["picks"] = 0
            state["burst"] += 1
            state["crowd"] = _crowd_for(seed, state["burst"], accounts)
        state["picks"] += 1
        return rng.choice(state["crowd"])

    return pick


def _make_read(rng: random.Random, pick: Picker) -> WorkItem:
    a = pick()
    b = pick()

    def read(handle: SnapshotTransaction) -> bool:
        hit = handle.contains("E", (min(a, b), max(a, b)))
        # a predicate read: does `a` refer anyone? (validated incrementally)
        active = handle.evaluate(_OUT_DEGREE, x=a)
        return hit or active

    return WorkItem("read", None, (a, b), read)


def _make_link(rng: random.Random, pick: Picker) -> WorkItem:
    a = pick()
    b = pick()
    while b == a:
        b = pick()
    a, b = min(a, b), max(a, b)

    def link(handle: SnapshotTransaction) -> bool:
        return handle.insert("E", (a, b))

    return WorkItem("link-forward", "link-forward", (a, b), link)


def _make_check_link(rng: random.Random, pick: Picker) -> WorkItem:
    """Read-then-link: validate the referrer is active, then insert.

    The tracked predicate read puts every edge out of ``a`` into the
    transaction's validated footprint, so a concurrent commit touching the
    same (hot) account invalidates this attempt and forces a retry — the
    contention signal the ``hot-key`` scenario exists to measure.
    """
    a = pick()
    b = pick()
    while b == a:
        b = pick()
    a, b = min(a, b), max(a, b)

    def check_link(handle: SnapshotTransaction) -> bool:
        handle.evaluate(_OUT_DEGREE, x=a)
        return handle.insert("E", (a, b))

    return WorkItem("link-forward", "link-forward", (a, b), check_link)


def _make_unlink(rng: random.Random, pick: Picker) -> WorkItem:
    a = pick()
    b = pick()
    a, b = min(a, b), max(a, b)

    def unlink(handle: SnapshotTransaction) -> bool:
        return handle.delete("E", (a, b))

    return WorkItem("unlink", "unlink", (a, b), unlink)


def _make_add_edge(rng: random.Random, pick: Picker) -> WorkItem:
    a = pick()
    # ~10% loops, ~45% back-edges, rest forward — the risky template
    roll = rng.random()
    if roll < 0.10:
        b = a
    else:
        b = pick()
        if roll < 0.55 and b != a:
            a, b = max(a, b), min(a, b)

    def add_edge(handle: SnapshotTransaction) -> bool:
        return handle.insert("E", (a, b))

    return WorkItem("add-edge", "add-edge", (a, b), add_edge)


_MAKERS = {
    "read": _make_read,
    "link-forward": _make_link,
    "unlink": _make_unlink,
    "add-edge": _make_add_edge,
}

#: scenario-specific maker overrides (the contended scenarios link via
#: validate-then-write, which is what turns key skew into observable
#: optimistic conflicts)
_SCENARIO_MAKERS = {
    "hot-key": {**_MAKERS, "link-forward": _make_check_link},
    "flash-crowd": {**_MAKERS, "link-forward": _make_check_link},
}

#: scenario-specific account-picker factories, ``(rng, accounts, seed) ->
#: Picker``; scenarios not listed here pick uniformly
_SCENARIO_PICKERS: Dict[str, Callable[[random.Random, int, int], Picker]] = {
    "hot-key": lambda rng, accounts, seed: _zipf_picker(rng, accounts),
    "flash-crowd": _flash_crowd_picker,
}


def build_streams(
    scenario: str,
    clients: int,
    ops_per_client: int,
    accounts: int,
    seed: Optional[int] = None,
) -> List[List[WorkItem]]:
    """Per-client operation streams for ``scenario``, fully seed-determined.

    ``seed`` defaults to ``REPRO_SEED`` (then 0), so the exact streams of a
    failing CI run or benchmark reproduce from its recorded seed.
    """
    if seed is None:
        seed = default_seed()
    if scenario not in _MIXES:
        raise ServiceError(f"unknown scenario {scenario!r}; have {SCENARIOS}")
    read_w, link_w, unlink_w, add_w = _MIXES[scenario]
    kinds = ("read", "link-forward", "unlink", "add-edge")
    weights = (read_w, link_w, unlink_w, add_w)
    make_picker = _SCENARIO_PICKERS.get(
        scenario, lambda rng, accounts, seed: _uniform_picker(rng, accounts)
    )
    makers = _SCENARIO_MAKERS.get(scenario, _MAKERS)
    streams: List[List[WorkItem]] = []
    for client in range(clients):
        rng = random.Random(1_000_003 * (seed + 1) + client)
        pick = make_picker(rng, accounts, seed)
        stream = [
            makers[rng.choices(kinds, weights)[0]](rng, pick)
            for _ in range(ops_per_client)
        ]
        streams.append(stream)
    return streams


# ---------------------------------------------------------------------------
# drivers
# ---------------------------------------------------------------------------

#: per-op completion-time histogram bounds (milliseconds)
_LATENCY_MS_BUCKETS = (0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0,
                       100.0, 250.0, 500.0, 1000.0)


def _percentile(ordered: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of an already-sorted sample (0 if empty)."""
    if not ordered:
        return 0.0
    rank = min(len(ordered) - 1, max(0, int(q * len(ordered))))
    return ordered[rank]


@dataclass
class WorkloadReport:
    """Outcome and throughput statistics of one workload run."""

    scenario: str
    mode: str  # "service" | "serial"
    workers: int
    ops: int = 0
    committed: int = 0
    read_only: int = 0
    rejected: int = 0
    aborted: int = 0
    conflicts: int = 0
    serial_fallbacks: int = 0
    batches: int = 0
    batched_commits: int = 0
    max_batch: int = 0
    seconds: float = 0.0
    #: per-operation completion times in milliseconds (one ``execute`` call,
    #: first attempt through retries to a definitive outcome): p50/p95/p99
    latency_p50_ms: float = 0.0
    latency_p95_ms: float = 0.0
    latency_p99_ms: float = 0.0
    latency_max_ms: float = 0.0
    service_stats: Dict[str, int] = field(default_factory=dict)

    def record_latencies(self, seconds_per_op: Sequence[float]) -> None:
        """Fold per-op completion times (seconds) into the tail summary."""
        ordered = sorted(seconds_per_op)
        self.latency_p50_ms = _percentile(ordered, 0.50) * 1e3
        self.latency_p95_ms = _percentile(ordered, 0.95) * 1e3
        self.latency_p99_ms = _percentile(ordered, 0.99) * 1e3
        self.latency_max_ms = ordered[-1] * 1e3 if ordered else 0.0

    @property
    def throughput(self) -> float:
        """Completed transactions (any outcome) per second."""
        return self.ops / self.seconds if self.seconds > 0 else 0.0

    @property
    def abort_rate(self) -> float:
        """Fraction of optimistic attempts that conflicted and retried."""
        attempts = self.ops + self.conflicts
        return self.conflicts / attempts if attempts else 0.0

    @property
    def mean_batch(self) -> float:
        return self.batched_commits / self.batches if self.batches else 0.0

    def summary(self) -> str:
        return (
            f"{self.scenario}/{self.mode} x{self.workers}: "
            f"{self.ops} txns in {self.seconds:.2f}s "
            f"({self.throughput:.0f} txn/s), "
            f"{self.committed} committed, {self.rejected} rejected, "
            f"{self.aborted} aborted, abort-rate {self.abort_rate:.1%}, "
            f"mean batch {self.mean_batch:.1f}, "
            f"p50 {self.latency_p50_ms:.2f}ms / p99 {self.latency_p99_ms:.2f}ms"
        )


def run_workload(
    service: TransactionService,
    streams: Sequence[Sequence[WorkItem]],
    workers: Optional[int] = None,
) -> WorkloadReport:
    """Drive ``streams`` through the service, one worker thread per client.

    ``workers`` caps the thread count (defaults to ``REPRO_SERVICE_WORKERS``,
    then 8); streams beyond the cap are distributed round-robin over the
    workers, so the op multiset is identical at any worker count.
    """
    if workers is None:
        workers = default_workers()
    workers = max(1, min(workers, len(streams) or 1))
    assigned: List[List[WorkItem]] = [[] for _ in range(workers)]
    for index, stream in enumerate(streams):
        assigned[index % workers].extend(stream)
    outcomes: List[List[TxnOutcome]] = [[] for _ in range(workers)]
    latencies: List[List[float]] = [[] for _ in range(workers)]
    errors: List[BaseException] = []
    latency_hist = _metrics.get_registry().histogram(
        "service.workload.latency_ms", buckets=_LATENCY_MS_BUCKETS
    )

    def worker(slot: int) -> None:
        try:
            for item in assigned[slot]:
                begun = time.perf_counter()
                outcome = service.execute(
                    item.fn, template=item.template, params=item.params
                )
                elapsed = time.perf_counter() - begun
                latency_hist.observe(elapsed * 1e3)
                latencies[slot].append(elapsed)
                outcomes[slot].append(outcome)
        except BaseException as exc:  # noqa: BLE001 - surfaced to the caller
            errors.append(exc)

    threads = [
        threading.Thread(target=worker, args=(slot,), name=f"workload-{slot}")
        for slot in range(workers)
    ]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    seconds = time.perf_counter() - started
    if errors:
        raise errors[0]

    stats = service.stats.as_dict()
    report = WorkloadReport(
        scenario="?", mode="service", workers=workers, seconds=seconds,
        service_stats=stats,
    )
    for slot_outcomes in outcomes:
        for outcome in slot_outcomes:
            report.ops += 1
            if outcome.status == "committed":
                report.committed += 1
            elif outcome.status == "rejected":
                report.rejected += 1
            else:
                report.aborted += 1
            report.conflicts += outcome.attempts - 1
    report.read_only = stats["read_only_commits"]
    report.serial_fallbacks = stats["serial_fallbacks"]
    report.batches = stats["batches"]
    report.batched_commits = stats["batched_commits"]
    report.max_batch = stats["max_batch"]
    report.record_latencies([sample for slot in latencies for sample in slot])
    return report


def run_serial_baseline(
    store: Store,
    constraints: Sequence[Constraint],
    streams: Sequence[Sequence[WorkItem]],
) -> WorkloadReport:
    """The pre-service execution model, for the E16 comparison.

    One transaction at a time: run the closure against the committed
    snapshot, re-check **every** constraint on the tentative post-state
    (runtime monitoring — no admission verdicts, no batching), then commit or
    discard individually.
    """
    report = WorkloadReport(scenario="?", mode="serial", workers=1)
    latencies: List[float] = []
    started = time.perf_counter()
    for stream in streams:
        for item in stream:
            report.ops += 1
            begun = time.perf_counter()
            version, snapshot = store.pin()
            handle = SnapshotTransaction(snapshot, version)
            item.fn(handle)
            delta = handle.delta()
            if delta.is_empty():
                report.committed += 1
                report.read_only += 1
                latencies.append(time.perf_counter() - begun)
                continue
            candidate = snapshot.apply_delta(delta)
            if all(c.holds(candidate) for c in constraints):
                store.begin()
                store.apply_delta(delta)
                store.commit_unchecked()
                report.committed += 1
            else:
                report.aborted += 1
            latencies.append(time.perf_counter() - begun)
    report.seconds = time.perf_counter() - started
    report.record_latencies(latencies)
    return report
