"""The transaction service: optimistic execution, WPC admission, group commit.

:class:`TransactionService` turns one :class:`~repro.db.storage.Store` into a
multi-client transaction processor.  The lifecycle of one client transaction:

1. **Pin** — the worker thread gets a :class:`SnapshotTransaction` against
   the current committed ``(version, Database)`` (no locks held while the
   client code runs).
2. **Execute optimistically** — the client reads through the tracked handle
   (read-your-own-writes) and buffers writes as a delta.  This is the
   parallel part: any number of transactions execute simultaneously against
   their immutable snapshots.
3. **Group commit** — the worker enqueues a commit request and the first
   worker to take the commit lock becomes the *leader*: it drains the queue,
   validates each request against the deltas committed since its snapshot
   (plus the earlier requests of the same batch), runs the admission-decided
   constraint work, composes the surviving deltas with
   :meth:`Delta.then <repro.db.delta.Delta.then>`, and applies the whole
   batch to the canonical store in **one** ``apply_delta`` — one write-log
   pass, one snapshot patch, one version bump, amortised over the batch.
   With a durable store (``REPRO_DURABLE=on``) the batch is also the WAL
   unit: one framed delta append and at most one fsync cover every commit in
   the batch, and outcomes are reported to clients only after the storage
   engine accepted the batch (an engine refusal aborts the whole batch, the
   store's committed state untouched).
4. **Retry** — a conflicted transaction re-runs against a fresh snapshot; a
   transaction still conflicted after ``max_retries`` optimistic attempts is
   executed by the leader *inside* the commit section (the serial fallback),
   which cannot conflict, so every transaction terminates.

Admission (see :mod:`repro.service.admission`) decides the constraint work
per request: ``static`` shapes commit with zero checks, ``guarded`` shapes
get one pre-state guard evaluation (no rollback ever), everything else gets
incremental post-state checking — the engine re-derives each constraint
through its delta rules along the batch's provenance chain.

A ``commit_timeout`` bounds every wait in the pipeline, so a deadlock (or a
stuck leader) surfaces as a :class:`ServiceError` instead of a hang — both
the stress suite and CI rely on this to fail fast.
"""

from __future__ import annotations

import logging
import os
import threading
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

import warnings

from .. import faults as _faults
from ..core.maintenance import Constraint
from ..db.database import Database
from ..db.delta import Delta
from ..db.engines import StorageEngineError
from ..db.storage import Store
from ..engine.backend import Backend, active_backend
from ..logic.signature import EMPTY_SIGNATURE, Signature
from ..logic.syntax import Formula
from ..obs import metrics as _metrics
from ..obs import trace as _trace
from ..transactions.base import Transaction, TransactionAbortedSignal
from .admission import AdmissionController, TransactionTemplate
from .snapshots import ServiceError, SnapshotManager, SnapshotTransaction, validate

logger = logging.getLogger(__name__)

__all__ = [
    "WORKERS_ENV",
    "COMMIT_RETRIES_ENV",
    "default_workers",
    "default_commit_retries",
    "classify_commit_error",
    "ServiceStats",
    "TxnOutcome",
    "TransactionService",
]

#: environment knob: default worker-thread count of the workload driver
WORKERS_ENV = "REPRO_SERVICE_WORKERS"

#: environment knob: transparent retries of a retryable commit failure
COMMIT_RETRIES_ENV = "REPRO_COMMIT_RETRIES"

DEFAULT_COMMIT_RETRIES = 3

#: exponential backoff between transient-failure retries: base doubling per
#: attempt, capped — a flapping disk gets breathing room without parking a
#: client for seconds
_BACKOFF_BASE = 0.01
_BACKOFF_CAP = 0.5

Work = Union[Transaction, Callable[[SnapshotTransaction], object]]


def default_commit_retries(fallback: int = DEFAULT_COMMIT_RETRIES) -> int:
    """Retry budget selected by ``REPRO_COMMIT_RETRIES`` (default 3)."""
    raw = os.environ.get(COMMIT_RETRIES_ENV, "").strip()
    if not raw:
        return fallback
    try:
        value = int(raw)
    except ValueError:
        warnings.warn(
            f"ignoring invalid {COMMIT_RETRIES_ENV}={raw!r}; expected an "
            f"integer — using {fallback}",
            RuntimeWarning,
            stacklevel=2,
        )
        return fallback
    return max(0, value)


def classify_commit_error(exc: BaseException) -> bool:
    """Is this commit-path failure worth retrying?

    *Retryable* failures are environmental: the storage engine refused the
    batch (flaky disk, injected fault), an OS-level I/O error, a timeout.
    Everything else — constraint logic blowing up, a TypeError in client
    work — is deterministic and retrying would only repeat it.
    """
    return isinstance(
        exc, (StorageEngineError, OSError, TimeoutError, _faults.FaultError)
    )


def default_workers(fallback: int = 8) -> int:
    """The worker count selected by ``REPRO_SERVICE_WORKERS`` (default 8)."""
    raw = os.environ.get(WORKERS_ENV, "").strip()
    if not raw:
        return fallback
    try:
        value = int(raw)
    except ValueError:
        return fallback
    return max(1, value)


#: dotted registry names mirroring each :class:`ServiceStats` field
#: (``batches``/``batched_commits``/``max_batch`` live under ``service.commit``
#: alongside the batch-size histogram; the admission-decided check counters
#: live under ``service.admission`` next to the controller's own counters)
_SERVICE_METRICS = {
    "submitted": "service.submitted",
    "committed": "service.committed",
    "read_only_commits": "service.read_only_commits",
    "conflicts": "service.conflicts",
    "retries": "service.retries",
    "serial_fallbacks": "service.serial_fallbacks",
    "rejected": "service.rejected",
    "aborted": "service.aborted",
    "batches": "service.commit.batches",
    "batched_commits": "service.commit.batched_commits",
    "static_skips": "service.admission.static_skips",
    "guard_checks": "service.admission.guard_checks",
    "runtime_checks": "service.admission.runtime_checks",
    "transient_retries": "service.transient_retries",
    "commit_failures": "service.commit_failures",
}

#: group-commit amortisation is the interesting distribution — count buckets
_BATCH_SIZE_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0)


class ServiceStats:
    """Thread-safe counters describing the service's life so far."""

    _FIELDS = (
        "submitted", "committed", "read_only_commits", "conflicts", "retries",
        "serial_fallbacks", "rejected", "aborted", "batches", "batched_commits",
        "max_batch", "static_skips", "guard_checks", "runtime_checks",
        "transient_retries", "commit_failures",
    )

    def __init__(self) -> None:
        self._lock = threading.Lock()
        for name in self._FIELDS:
            setattr(self, name, 0)
        registry = _metrics.get_registry()
        self._instruments = {
            field: registry.counter(name) for field, name in _SERVICE_METRICS.items()
        }
        self._m_max_batch = registry.gauge("service.commit.max_batch")
        self._m_batch_size = registry.histogram(
            "service.commit.batch_size", buckets=_BATCH_SIZE_BUCKETS
        )

    def add(self, **deltas: int) -> None:
        with self._lock:
            for name, amount in deltas.items():
                setattr(self, name, getattr(self, name) + amount)
        for name, amount in deltas.items():
            instrument = self._instruments.get(name)
            if instrument is not None:
                instrument.inc(amount)

    def saw_batch(self, size: int) -> None:
        with self._lock:
            self.batches += 1
            self.batched_commits += size
            if size > self.max_batch:
                self.max_batch = size
        self._instruments["batches"].inc()
        self._instruments["batched_commits"].inc(size)
        self._m_max_batch.set(self.max_batch)
        self._m_batch_size.observe(size)

    def as_dict(self) -> Dict[str, int]:
        with self._lock:
            return {name: getattr(self, name) for name in self._FIELDS}

    def __repr__(self) -> str:
        return f"ServiceStats({self.as_dict()!r})"


@dataclass(frozen=True)
class TxnOutcome:
    """What happened to one submitted transaction.

    ``status`` is ``"committed"`` (its delta is durable at ``version``),
    ``"rejected"`` (an admission guard refused it before execution effects —
    the no-rollback path), or ``"aborted"`` (a runtime constraint check on
    the post-state failed, or the commit path itself failed).  Conflicts
    never surface here: they are retried internally and only show up in
    ``attempts`` and the service stats.  ``retryable`` marks an abort caused
    by a *transient* commit-path failure (storage refusal, I/O error): the
    transaction itself is fine and a later resubmission may succeed — the
    service already spent its own ``commit_retries`` budget before giving
    this back.
    """

    status: str
    reason: str = ""
    version: int = -1
    attempts: int = 1
    retryable: bool = False

    @property
    def committed(self) -> bool:
        return self.status == "committed"


class _CommitRequest:
    __slots__ = (
        "handle", "delta", "template", "params", "work", "serial", "tag",
        "done", "status", "reason", "version", "retryable",
    )

    def __init__(self, handle, delta, template, params, work, serial, tag=None):
        self.handle = handle
        self.delta = delta
        self.template = template
        self.params = params
        self.work = work
        self.serial = serial
        self.tag = tag
        self.done = threading.Event()
        self.status = "pending"
        self.reason = ""
        self.version = -1
        self.retryable = False


class TransactionService:
    """A multi-client, MVCC + group-commit transaction processor over a store.

    ``store`` may be a :class:`Store` or a plain :class:`Database` (wrapped).
    ``constraints`` are maintained across every commit; *how* each commit
    pays for them is decided by the admission controller — register
    transaction templates with :meth:`register` to unlock the static and
    guarded fast paths.  Commits bypass the store's own checker hooks
    (``commit_unchecked``) because admission already decided the checking.
    """

    def __init__(
        self,
        store: Union[Store, Database],
        constraints: Sequence[Constraint] = (),
        signature: Signature = EMPTY_SIGNATURE,
        admission: Optional[AdmissionController] = None,
        max_retries: int = 8,
        commit_timeout: float = 60.0,
        commit_retries: Optional[int] = None,
        backend: Optional[Backend] = None,
        history_limit: int = 1024,
        owns_backend: bool = False,
        owns_store: bool = False,
    ):
        self.backend = backend if backend is not None else active_backend()
        self._owns_backend = owns_backend and backend is not None
        self._owns_store = owns_store
        if isinstance(store, Database):
            # under a sharded backend the canonical store materialises
            # hash-partitioned snapshots: every pinned version is a
            # ShardedDatabase, and the group-commit batch delta splits into
            # one composed sub-delta per shard when it is applied
            store = Store(
                store.schema,
                store,
                shards=getattr(self.backend, "num_shards", None),
            )
            # the service built this store, so the service must close it —
            # with REPRO_DURABLE=on it holds WAL file handles
            self._owns_store = True
        self.store = store
        self.constraints = list(constraints)
        self.signature = signature
        self.admission = admission if admission is not None else AdmissionController(
            self.constraints, signature
        )
        self.snapshots = SnapshotManager(store, history_limit=history_limit)
        self.max_retries = max_retries
        self.commit_timeout = commit_timeout
        self.commit_retries = (
            default_commit_retries() if commit_retries is None
            else max(0, commit_retries)
        )
        self.stats = ServiceStats()
        self._queue_lock = threading.Lock()
        self._queue: List[_CommitRequest] = []
        self._commit_lock = threading.Lock()
        #: followers block here instead of polling: a leader notifies after
        #: releasing the commit lock, which is also (because outcomes are
        #: published before the release) the moment every request it drained
        #: has its ``done`` event set — so one notify wakes both "my commit
        #: finished" and "the leader seat is free" waiters
        self._commit_cond = threading.Condition()
        #: tags of committed *writer* transactions, in commit order — the
        #: serial history every committed run is equivalent to (appended under
        #: the commit lock; read-only commits never enter the pipeline and
        #: serialize at their snapshot point instead)
        self.commit_log: List[object] = []

    def close(self) -> None:
        """Release service-owned resources.

        When the service was built with ``owns_backend=True`` (as
        :func:`~repro.service.workloads.build_service` does for dedicated
        sharded/process backends) this shuts down the backend's worker
        pool; a shared/ambient backend is left untouched.  A store the
        service created itself (one passed as a plain :class:`Database`, or
        ``owns_store=True``) is closed too, releasing the storage engine's
        file handles under ``REPRO_DURABLE=on``.  Idempotent.
        """
        if self._owns_backend:
            self._owns_backend = False
            closer = getattr(self.backend, "close", None)
            if closer is not None:
                closer()
        if self._owns_store:
            self._owns_store = False
            self.store.close()

    # -- registration and reads ----------------------------------------------------

    def register(self, template: TransactionTemplate):
        """Classify a transaction template once; returns its verdicts."""
        return self.admission.register(template)

    def begin(self) -> SnapshotTransaction:
        """A fresh tracked handle pinned to the committed head (for ad-hoc use)."""
        return self.snapshots.begin(self.signature, self.backend)

    def snapshot(self) -> Database:
        """The current committed state (never sees in-flight transactions)."""
        return self.store.committed_snapshot()

    def invariant_holds(self) -> bool:
        """Do all constraints hold on the committed state?"""
        state = self.snapshot()
        return all(c.holds(state, self.signature) for c in self.constraints)

    # -- the client entry point ------------------------------------------------------

    def execute(
        self,
        work: Work,
        template: Optional[str] = None,
        params: Tuple = (),
        tag: Optional[object] = None,
        deadline: Optional[float] = None,
    ) -> TxnOutcome:
        """Run one client transaction to a final outcome (thread-safe).

        ``work`` is either a callable taking a :class:`SnapshotTransaction`
        (the tracked API — precise conflict detection) or a paper-style
        :class:`Transaction` (opaque reads — validated conservatively).
        ``template``/``params`` name a registered admission template; without
        them every constraint is checked at runtime.

        Conflicts are retried internally against fresh snapshots; after
        ``max_retries`` optimistic rounds the transaction is executed by the
        group-commit leader inside the critical section, so this method
        always terminates with a definitive outcome (or raises
        :class:`ServiceError` on timeout).  Transient commit-path failures
        (see :func:`classify_commit_error`) are retried up to
        ``commit_retries`` times with exponential backoff before surfacing
        as a ``retryable`` abort.

        ``deadline`` is an absolute ``time.monotonic()`` instant: once it
        passes, conflict/transient retry loops stop and the transaction
        surfaces its current outcome (or a :class:`ServiceError` if it never
        reached a leader).  Callers propagate it down from their own client
        budget; ``None`` keeps the classic commit_timeout-only behavior.
        """
        if isinstance(work, Transaction):
            transaction = work
            if template is None and not params:
                # auto-adopt the transaction's registered verdicts only when
                # they are all static: guarded verdicts need the instance
                # parameters to build their guard, which a bare Transaction
                # does not carry — those run with runtime verification unless
                # the caller passes template/params explicitly
                verdicts = self.admission.verdicts_for(transaction.name)
                if verdicts and all(v.mode == "static" for v in verdicts.values()):
                    template = transaction.name
            work = lambda handle: handle.apply(transaction)  # noqa: E731
        self.stats.add(submitted=1)
        with _trace.span("service.txn", template=template) as txn_span:
            outcome = self._execute_loop(work, template, params, tag, deadline)
            txn_span.annotate(status=outcome.status, attempts=outcome.attempts)
        return outcome

    def _execute_loop(
        self,
        work: Callable[[SnapshotTransaction], object],
        template: Optional[str],
        params: Tuple,
        tag: Optional[object],
        deadline: Optional[float] = None,
    ) -> TxnOutcome:
        attempts = 0
        transient = 0
        while True:
            if deadline is not None and time.monotonic() >= deadline:
                raise ServiceError(
                    "deadline exceeded before the transaction reached an outcome"
                )
            attempts += 1
            serial = attempts - transient > self.max_retries
            if serial:
                self.stats.add(serial_fallbacks=1)
                logger.warning(
                    "serial fallback: transaction (template=%s) still conflicted "
                    "after %d optimistic attempt(s) (max_retries=%d); executing "
                    "inside the group-commit critical section",
                    template, attempts - 1, self.max_retries,
                )
                request = _CommitRequest(
                    None, Delta(), template, params, work, True, tag
                )
            else:
                with _trace.span("service.txn_attempt", attempt=attempts):
                    handle = self.begin()
                    try:
                        work(handle)
                    except TransactionAbortedSignal as exc:
                        self.stats.add(rejected=1)
                        return TxnOutcome("rejected", str(exc), attempts=attempts)
                    delta = handle.delta()
                if delta.is_empty() and not handle.reads.opaque:
                    # a read-only transaction is serializable at its snapshot
                    # point; nothing to validate, nothing to apply
                    self.stats.add(committed=1, read_only_commits=1)
                    return TxnOutcome(
                        "committed", version=handle.version, attempts=attempts
                    )
                request = _CommitRequest(
                    handle, delta, template, params, work, False, tag
                )
            self._submit_and_wait(request, deadline)
            if request.status == "conflict":
                self.stats.add(conflicts=1, retries=1)
                continue
            if (
                request.status == "aborted"
                and request.retryable
                and transient < self.commit_retries
            ):
                # a transient commit-path failure (storage refusal, injected
                # I/O error): the transaction itself is fine — back off and
                # resubmit against a fresh snapshot
                transient += 1
                self.stats.add(transient_retries=1)
                backoff = min(_BACKOFF_BASE * (2 ** (transient - 1)), _BACKOFF_CAP)
                if deadline is not None:
                    backoff = min(backoff, max(0.0, deadline - time.monotonic()))
                logger.warning(
                    "transient commit failure (%s); retry %d/%d after %.0f ms",
                    request.reason, transient, self.commit_retries, backoff * 1e3,
                )
                if backoff > 0:
                    time.sleep(backoff)
                continue
            self.stats.add(**{request.status: 1})
            return TxnOutcome(
                request.status, request.reason, request.version, attempts,
                retryable=request.retryable,
            )

    # -- the group-commit pipeline ---------------------------------------------------

    def _submit_and_wait(
        self, request: _CommitRequest, client_deadline: Optional[float] = None
    ) -> None:
        """Enqueue ``request`` and drive/await the group-commit leader.

        Followers never poll: a thread that loses the leader election blocks
        on ``_commit_cond`` until the leader — after publishing every drained
        outcome and releasing the commit lock — notifies.  The wake-up check
        under the condition's own lock closes the race between a failed
        try-acquire and the leader's notify, so a follower either sees its
        ``done`` already set or is parked before the notify can be issued.
        The ``commit_timeout`` deadline bounds every wait exactly as before
        (``_give_up`` semantics unchanged).
        """
        with self._queue_lock:
            self._queue.append(request)
        deadline = time.monotonic() + self.commit_timeout
        if client_deadline is not None:
            deadline = min(deadline, client_deadline)
        with _trace.span("service.leader_wait", serial=request.serial) as span:
            became_leader = False
            while not request.done.is_set():
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    self._give_up(request)
                    return
                with self._commit_cond:
                    acquired = self._commit_lock.acquire(blocking=False)
                    if not acquired and not request.done.is_set():
                        # blocks until the leader's post-release notify (or
                        # the deadline); re-checks done/leadership on wake
                        self._commit_cond.wait(timeout=remaining)
                if acquired:
                    became_leader = True
                    try:
                        self._drain()
                    finally:
                        with self._commit_cond:
                            self._commit_lock.release()
                            self._commit_cond.notify_all()
                    # our request was either drained by us or re-queued
            span.annotate(leader=became_leader)

    def _give_up(self, request: _CommitRequest) -> None:
        """Abandon a timed-out request without leaving a ghost commit behind.

        If the request is still queued it is withdrawn (no leader will ever
        see it) and the timeout raises.  If a leader already took it, its
        fate is decided — ``_drain`` guarantees ``done`` is eventually set
        even when the leader fails — so wait one more grace period for the
        definitive outcome instead of reporting a failure for a transaction
        that may well have committed.
        """
        with self._queue_lock:
            try:
                self._queue.remove(request)
                withdrawn = True
            except ValueError:
                withdrawn = False
        if withdrawn:
            raise ServiceError(
                f"commit timed out after {self.commit_timeout:.1f}s "
                "(deadlocked or overloaded leader)"
            )
        if not request.done.wait(timeout=self.commit_timeout):
            raise ServiceError(
                f"commit timed out after {2 * self.commit_timeout:.1f}s "
                "with the request already taken by a leader"
            )

    def _drain(self) -> None:
        """Leader body: validate, admit, compose and apply one batch (locked).

        No request may be left hanging: a failure inside one request's
        validation, guard or constraint work is attributed to *that* request
        (an ``aborted`` outcome carrying the error), and the ``finally``
        block marks anything still pending and wakes every waiter even when
        the leader itself blows up mid-batch.
        """
        lag = _faults.delay("service.leader.stall")
        if lag > 0.0:
            time.sleep(lag)
        with self._queue_lock:
            batch = list(self._queue)
            self._queue.clear()
        if not batch:
            return
        try:
            with _trace.span("service.group_commit", requests=len(batch)) as gc_span:
                _version, current = self.store.pin()
                running = current
                batch_delta = Delta()
                survivors: List[_CommitRequest] = []
                for request in batch:
                    with _trace.span(
                        "service.txn_commit",
                        template=request.template,
                        serial=request.serial,
                    ) as req_span:
                        try:
                            effective = self._process(request, running, batch_delta)
                        except Exception as exc:  # noqa: BLE001 - one bad txn must not sink the batch
                            request.status = "aborted"
                            request.reason = f"transaction failed: {exc!r}"
                            req_span.annotate(status="aborted")
                            continue
                        if effective is None:
                            req_span.annotate(status=request.status)
                            continue
                        req_span.annotate(status="committed")
                    survivors.append(request)
                    if not effective.is_empty():
                        running = running.apply_delta(effective)
                        batch_delta = batch_delta.then(effective)
                if not batch_delta.is_empty():
                    with _trace.span(
                        "service.apply_delta",
                        rows=len(batch_delta),
                        survivors=len(survivors),
                    ):
                        self.store.begin()
                        try:
                            self.store.apply_delta(batch_delta)
                            self.store.commit_unchecked()
                        except Exception as exc:  # noqa: BLE001 - classified below
                            # the storage engine (or the apply itself) refused
                            # the batch: the store rolled nothing committed
                            # back, so every survivor aborts with a *typed*
                            # outcome instead of the leader's raw exception —
                            # the client decides whether to resubmit based on
                            # the retryable classification
                            if self.store.in_transaction:
                                self.store.rollback()
                            retryable = classify_commit_error(exc)
                            self.stats.add(commit_failures=1)
                            logger.warning(
                                "group-commit batch of %d failed at the store "
                                "(%s: %s); aborting batch as %s",
                                len(survivors), type(exc).__name__, exc,
                                "retryable" if retryable else "fatal",
                            )
                            for request in survivors:
                                request.status = "aborted"
                                request.reason = (
                                    f"commit failed ({type(exc).__name__}): {exc}"
                                )
                                request.retryable = retryable
                            gc_span.annotate(committed=0, error=type(exc).__name__)
                            return
                        except BaseException:
                            if self.store.in_transaction:
                                self.store.rollback()
                            raise
                    self.snapshots.record(self.store.version, batch_delta)
                    # the amortization metric: committed writers per store apply
                    # (conflicted/rejected/aborted requests are not part of the
                    # batch the store paid for, and drains that applied nothing
                    # are not batches)
                    self.stats.saw_batch(len(survivors))
                new_version = self.store.version
                gc_span.annotate(committed=len(survivors), version=new_version)
                for request in survivors:
                    request.status = "committed"
                    request.version = new_version
                    if request.tag is not None:
                        self.commit_log.append(request.tag)
        finally:
            for request in batch:
                if request.status == "pending":
                    request.status = "aborted"
                    request.reason = "group-commit leader failed mid-batch"
                request.done.set()

    def _process(
        self, request: _CommitRequest, running: Database, batch_delta: Delta
    ) -> Optional[Delta]:
        """Validate and admission-check one request against the running state.

        Returns the request's effective delta (to fold into the batch) when
        it commits, ``None`` otherwise — with ``request.status`` set to the
        conflict/rejection/abort it suffered.
        """
        lag = _faults.delay("service.validate.delay")
        if lag > 0.0:
            time.sleep(lag)
        if request.serial:
            handle = SnapshotTransaction(
                running, -1, self.signature, self.backend
            )
            try:
                request.work(handle)
            except TransactionAbortedSignal as exc:
                request.status, request.reason = "rejected", str(exc)
                return None
            delta = handle.delta()
        else:
            foreign = self.snapshots.foreign_delta(request.handle.version)
            if foreign is None:
                request.status = "conflict"
                request.reason = "snapshot fell out of the validation window"
                return None
            reason = validate(
                request.handle.reads,
                request.delta,
                foreign.then(batch_delta),
                request.handle.base,
                self.signature,
                self.backend,
            )
            if reason is not None:
                request.status, request.reason = "conflict", reason
                return None
            delta = request.delta

        verdicts = self.admission.verdicts_for(request.template)
        runtime_checks: List[Constraint] = []
        for constraint in self.constraints:
            verdict = verdicts.get(constraint.name) if verdicts else None
            mode = verdict.mode if verdict is not None else "runtime"
            if mode == "static":
                self.stats.add(static_skips=1)
                continue
            if mode == "guarded":
                guard = self.admission.guard_for(
                    request.template, constraint, request.params
                )
                self.stats.add(guard_checks=1)
                ok = (
                    self.backend.evaluate(guard, running, signature=self.signature)
                    if isinstance(guard, Formula)
                    else guard.holds(running)
                )
                if not ok:
                    request.status = "rejected"
                    request.reason = f"guard of {constraint.name!r} failed on the pre-state"
                    return None
                continue
            runtime_checks.append(constraint)

        effective = delta.normalized(running)
        if runtime_checks and not effective.is_empty():
            candidate = running.apply_delta(effective)
            for constraint in runtime_checks:
                self.stats.add(runtime_checks=1)
                if not constraint.holds(candidate, self.signature):
                    request.status = "aborted"
                    request.reason = f"constraint {constraint.name!r} violated"
                    return None
        return effective

    # -- observability ---------------------------------------------------------------

    def observability(self) -> Dict[str, object]:
        """One merged snapshot of every stats surface the service touches.

        Combines the service's own counters, the admission controller's
        bookkeeping, the backend's cache statistics, the store's transaction
        and durability counters, the metrics-registry snapshot (empty under
        ``REPRO_METRICS=off``), and the tracer status — the single dict the
        benchmark harness embeds into its result files.
        """
        store_stats = self.store.stats
        with store_stats._lock:
            txn_stats = {
                "committed": store_stats.committed,
                "aborted": store_stats.aborted,
                "rolled_back_writes": store_stats.rolled_back_writes,
                "constraint_checks": store_stats.constraint_checks,
                "precondition_checks": store_stats.precondition_checks,
                "committed_wall_time": store_stats.committed_wall_time,
                "aborted_wall_time": store_stats.aborted_wall_time,
            }
        cache_stats = getattr(self.backend, "cache_stats", None)
        return {
            "service": self.stats.as_dict(),
            "admission": self.admission.stats(),
            "backend": cache_stats() if cache_stats is not None else {},
            "store": {
                "transactions": txn_stats,
                "engine": self.store.storage_stats(),
            },
            "metrics": _metrics.get_registry().snapshot(),
            "trace": {
                "enabled": _trace.trace_enabled(),
                "finished_spans": len(_trace.finished()),
            },
        }

    def __repr__(self) -> str:
        return (
            f"TransactionService(store={self.store!r}, "
            f"constraints={[c.name for c in self.constraints]})"
        )
