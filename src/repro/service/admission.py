"""WPC-verified admission: decide once how much checking each commit needs.

The paper's point, turned into a serving-layer fast path: for a *registered*
transaction shape, the weakest precondition ``wpc(T, alpha)`` is computed and
classified **once** (:func:`repro.core.wpc.classify_preservation`), and every
subsequent commit of that shape consults a per-``(transaction, constraint)``
verdict cache instead of doing constraint work:

* **static** — ``alpha |= wpc(T, alpha)`` on the verification family: the
  shape preserves the constraint from any consistent state, so its commits
  run with *zero* runtime constraint checks;
* **guarded** — the (possibly simplified) precondition is evaluated on the
  pre-state at commit time; a failing guard rejects the transaction before it
  touches the store, so nothing is ever rolled back;
* **runtime** — no syntactic precondition exists: the scheduler falls back to
  incremental post-state checking (the :class:`RuntimeCheckPolicy` strategy,
  riding the engine's delta rules).

Shapes are registered as **templates**: a builder producing an
:class:`~repro.transactions.fo_transactions.FOProgram` instance per parameter
tuple, plus sample parameters.  Classification runs on every sample and the
*most conservative* verdict wins, so a template whose instances differ in
kind (one sample static, one guarded) is treated uniformly at the safe level.
A template may also ship a hand-written parametric guard (the paper's
closing-remark simplification ``Delta``): it is verified against the true
``wpc`` on the family for every sample before being trusted, and then used
per instance — typically far smaller than the mechanical precondition.
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from ..core.maintenance import Constraint
from ..core.simplification import equivalent_under
from ..core.wpc import PreservationVerdict, classify_preservation, weakest_precondition
from ..db.database import Database
from ..logic.signature import EMPTY_SIGNATURE, Signature
from ..logic.syntax import TOP, Formula
from ..obs import metrics as _metrics
from ..obs import trace as _trace
from ..transactions.base import Transaction
from .snapshots import ServiceError

__all__ = ["TransactionTemplate", "AdmissionController"]

#: severity order used when samples of one template disagree
_MODE_RANK = {"static": 0, "guarded": 1, "runtime": 2}


class TransactionTemplate:
    """A named, parameterised transaction shape.

    ``build(*params)`` must return the transaction instance (usually an
    :class:`FOProgram`, anything :func:`weakest_precondition` accepts) for one
    parameter tuple; ``samples`` are representative parameter tuples used for
    classification — supply one per qualitatively different instance shape.
    ``guards`` optionally maps a constraint name to ``guard(*params)``, a
    hand-simplified parametric precondition (verified before use).
    """

    def __init__(
        self,
        name: str,
        build: Callable[..., Transaction],
        samples: Sequence[Tuple] = ((),),
        guards: Optional[Mapping[str, Callable[..., Formula]]] = None,
    ):
        if not samples:
            raise ServiceError(f"template {name!r} needs at least one sample")
        self.name = name
        self.build = build
        self.samples = tuple(tuple(s) for s in samples)
        self.guards = dict(guards or {})

    def __repr__(self) -> str:
        return f"TransactionTemplate({self.name!r}, samples={len(self.samples)})"


class AdmissionController:
    """Classify registered transaction shapes against the service's constraints.

    Thread-safe; classification happens at registration time (offline, the
    point of static verification), lookups at commit time are dictionary
    reads.  Guard formulas for *guarded* verdicts are produced per instance —
    from the template's verified parametric guard when available, otherwise
    from a freshly computed ``wpc`` — and memoised per parameter tuple.
    """

    def __init__(
        self,
        constraints: Sequence[Constraint],
        signature: Signature = EMPTY_SIGNATURE,
        family: Optional[Sequence[Database]] = None,
    ):
        self.constraints = list(constraints)
        self.signature = signature
        self.family = list(family) if family is not None else None
        self._lock = threading.Lock()
        self._templates: Dict[str, TransactionTemplate] = {}
        self._verdicts: Dict[str, Dict[str, PreservationVerdict]] = {}
        self._guard_cache: Dict[Tuple[str, str, Tuple], Formula] = {}
        # bookkeeping for reports/benchmarks (mirrored into the metrics
        # registry under service.admission.* — docs/observability.md)
        self.classified = 0
        self.guard_cache_hits = 0
        registry = _metrics.get_registry()
        self._m_classified = registry.counter("service.admission.classified")
        self._m_guard_cache_hits = registry.counter(
            "service.admission.guard_cache_hits"
        )

    # -- registration (offline) --------------------------------------------------

    def register(self, template: TransactionTemplate) -> Dict[str, PreservationVerdict]:
        """Classify ``template`` against every constraint; returns the verdicts.

        Idempotent per template name.  As a side effect the representative
        precondition is recorded on each :class:`Constraint` via
        :meth:`~repro.core.maintenance.Constraint.register_precondition`, so
        the classic :class:`StaticPreconditionPolicy` shares the table.
        """
        with self._lock:
            cached = self._verdicts.get(template.name)
            if cached is not None:
                return dict(cached)
        verdicts: Dict[str, PreservationVerdict] = {}
        with _trace.span("service.admission.classify", template=template.name):
            for constraint in self.constraints:
                verdicts[constraint.name] = self._classify(template, constraint)
        with self._lock:
            self._templates[template.name] = template
            self._verdicts[template.name] = verdicts
            self.classified += len(verdicts)
        self._m_classified.inc(len(verdicts))
        return dict(verdicts)

    def _classify(
        self, template: TransactionTemplate, constraint: Constraint
    ) -> PreservationVerdict:
        """One (template, constraint) verdict: worst sample wins."""
        worst: Optional[PreservationVerdict] = None
        for params in template.samples:
            verdict = classify_preservation(
                template.build(*params),
                constraint.formula,
                databases=self.family,
                signature=self.signature,
                # the controller supplies its own (verified) parametric
                # guards or per-instance wpcs — skip the simplification sweep
                simplify_guard=False,
            )
            if worst is None or _MODE_RANK[verdict.mode] > _MODE_RANK[worst.mode]:
                worst = verdict
        assert worst is not None
        if worst.precondition is not None:
            constraint.register_precondition(template.name, worst.precondition)
        if worst.mode == "guarded":
            self._verify_template_guard(template, constraint)
        return worst

    def _verify_template_guard(
        self, template: TransactionTemplate, constraint: Constraint
    ) -> None:
        """Check a hand-written parametric guard against the true wpc.

        A guard that is not equivalent to the weakest precondition under the
        invariant (on the family, for every sample) is silently dropped — the
        controller then falls back to per-instance ``wpc`` computation, which
        is always sound.
        """
        builder = template.guards.get(constraint.name)
        if builder is None or not isinstance(constraint.formula, Formula):
            return
        family = self.family if self.family is not None else self._default_family(
            template
        )
        for params in template.samples:
            precondition = weakest_precondition(
                template.build(*params), constraint.formula
            )
            if not equivalent_under(
                constraint.formula,
                builder(*params),
                precondition,
                family,
                self.signature,
            ):
                del template.guards[constraint.name]
                return

    def _default_family(self, template: TransactionTemplate) -> List[Database]:
        from ..db.graph import all_graphs
        from ..db.schema import GRAPH_SCHEMA

        schema = getattr(template.build(*template.samples[0]), "schema", None)
        return list(all_graphs(3)) if schema == GRAPH_SCHEMA else []

    # -- commit-time lookups (hot path) -------------------------------------------

    def verdicts_for(
        self, template_name: Optional[str]
    ) -> Optional[Mapping[str, PreservationVerdict]]:
        """The cached verdicts of a registered template (``None`` if unknown)."""
        if template_name is None:
            return None
        with self._lock:
            return self._verdicts.get(template_name)

    def stats(self) -> Dict[str, int]:
        """Classification bookkeeping (part of the merged observability view)."""
        with self._lock:
            return {
                "templates": len(self._templates),
                "classified": self.classified,
                "guard_cache_hits": self.guard_cache_hits,
            }

    def guard_for(
        self, template_name: str, constraint: Constraint, params: Tuple
    ) -> Formula:
        """The pre-state guard for one *guarded* instance (memoised).

        Uses the template's verified parametric guard when present; otherwise
        computes ``wpc(build(*params), alpha)`` on demand.  Either way the
        result is cached per parameter tuple, so hot parameters pay once.
        """
        key = (template_name, constraint.name, params)
        with self._lock:
            guard = self._guard_cache.get(key)
            template = self._templates.get(template_name)
        if guard is not None:
            with self._lock:
                self.guard_cache_hits += 1
            self._m_guard_cache_hits.inc()
            return guard
        if template is None:
            raise ServiceError(f"template {template_name!r} is not registered")
        builder = template.guards.get(constraint.name)
        if builder is not None:
            guard = builder(*params)
        elif isinstance(constraint.formula, Formula):
            guard = weakest_precondition(template.build(*params), constraint.formula)
        else:
            guard = TOP
        with self._lock:
            self._guard_cache[key] = guard
        return guard

    def __repr__(self) -> str:
        with self._lock:
            return (
                f"AdmissionController(templates={sorted(self._templates)}, "
                f"constraints={[c.name for c in self.constraints]})"
            )
