"""repro — Verifiable Properties of Database Transactions.

A from-scratch reproduction of Benedikt, Griffin & Libkin, "Verifiable
Properties of Database Transactions" (PODS 1996; Information and Computation
147:57-88, 1998): weakest preconditions and prerelations for database
transactions, the transaction and specification languages the paper studies,
the finite-model-theory toolkit its proofs rely on, and an integrity-
maintenance engine demonstrating the practical payoff.

Sub-packages
------------
``repro.db``
    Relational schemas, finite databases, graph families, relational algebra,
    graph enumerations, a transactional storage engine, and the delta
    subsystem (``Delta`` / ``Database.apply_delta``) that makes functional
    updates O(|delta|).
``repro.logic``
    Specification languages: FO, FOc, FOc(Omega), FO with counting, monadic
    Sigma-1-1; parsing, evaluation, normal forms, rewriting.
``repro.fmt``
    Finite model theory: isomorphism, Hanf locality, Ehrenfeucht-Fraisse and
    Ajtai-Fagin games, Gaifman locality, degree counts.
``repro.transactions``
    Transaction languages: relational algebra (SPJ), the Qian-style
    first-order language, Datalog with stratified negation, recursive
    transactions (tc, dtc, same-generation), while-iteration.
``repro.core``
    The paper's contribution: prerelations, the weakest-precondition
    calculus, transaction-safety verification, integrity maintenance, robust
    verifiability, and the Theorem 5 / Theorem 7 constructions.
``repro.engine``
    The set-at-a-time query engine: FO formulas compiled to relational-
    algebra plans executed against indexed databases, behind a switchable
    backend protocol (``REPRO_BACKEND=naive|compiled``), with incremental
    delta re-evaluation along update streams (``REPRO_DELTA=on|off|verify``).
``repro.service``
    The concurrent transaction service: MVCC snapshots over the store,
    delta-based optimistic conflict validation, WPC-verified admission
    (statically safe shapes commit with zero runtime checks), group commit,
    and the workload scenario library behind the E16 benchmark
    (``REPRO_SERVICE_WORKERS`` selects the driver's thread count).

Quickstart
----------
>>> from repro.db import chain
>>> from repro.logic import parse
>>> from repro.transactions import FOProgram, DeleteWhere
>>> from repro.core import PrerelationSpec, WpcCalculator
>>> program = FOProgram([DeleteWhere("E", ("x", "y"), parse("E(y, x)"))])
>>> spec = PrerelationSpec.from_fo_program(program)
>>> wpc = WpcCalculator(spec).wpc(parse("forall x . ~E(x, x)"))
>>> # wpc holds on a database iff the constraint holds after the program runs.
"""

from . import core, db, engine, fmt, logic, service, transactions
from .engine import (
    CompiledBackend,
    NaiveBackend,
    active_backend,
    set_backend,
    using_backend,
)
from .core import (
    ChainTransaction,
    ChainWpcCalculator,
    Constraint,
    IntegrityMaintainer,
    PrerelationSpec,
    PrerelationTransaction,
    SemanticPrecondition,
    WpcCalculator,
    WpcError,
    check_wpc,
    make_safe,
    preserves_bounded,
    weakest_precondition,
)
from .db import Database, Schema, Store
from .logic import Formula, evaluate, parse
from .service import TransactionService, TransactionTemplate
from .transactions import FOProgram, Transaction

__version__ = "1.1.0"

__all__ = [
    "core",
    "db",
    "engine",
    "fmt",
    "logic",
    "service",
    "transactions",
    "CompiledBackend",
    "NaiveBackend",
    "active_backend",
    "set_backend",
    "using_backend",
    "ChainTransaction",
    "ChainWpcCalculator",
    "Constraint",
    "IntegrityMaintainer",
    "PrerelationSpec",
    "PrerelationTransaction",
    "SemanticPrecondition",
    "WpcCalculator",
    "WpcError",
    "check_wpc",
    "make_safe",
    "preserves_bounded",
    "weakest_precondition",
    "Database",
    "Schema",
    "Store",
    "Formula",
    "evaluate",
    "parse",
    "FOProgram",
    "Transaction",
    "TransactionService",
    "TransactionTemplate",
    "__version__",
]
