"""A tour of the paper's expressiveness results, run on concrete data.

The script walks through the negative and positive results:

1. Theorem B — transitive closure has no FO weakest precondition: the witness
   cycle families agree on low-rank FO sentences (EF game / Hanf counts) but
   their tc images differ on the constraint ``forall x y . E(x, y)``.
2. Theorem 2, Claim 3 — same-generation: the trees ``G_{n,n}`` and
   ``G_{n-1,n+1}`` realise identical Hanf r-type censuses, yet the isolated-node
   constraint separates their sg images.
3. Theorem 7 / Corollary 3 — the chain transaction is verifiable over FO; its
   preconditions are computed and checked, and their quantifier rank blows up
   exponentially.
4. Proposition 5 — adding a single constant destroys that verifiability.

Run with:  python examples/expressiveness_tour.py
"""

from repro.db import (
    chain,
    chain_and_cycles,
    double_cycle_family,
    single_cycle_family,
    two_branch_tree,
)
from repro.db.graph import same_generation
from repro.fmt import duplicator_wins, same_type_counts, type_census
from repro.logic import evaluate, parse
from repro.logic.builder import alpha_isolated_exactly, psi_cc, totally_connected
from repro.core import (
    ChainTransaction,
    ChainWpcCalculator,
    SemanticPrecondition,
    chain_test_reduction,
    check_wpc,
    proposition5_constraint,
)
from repro.transactions import tc_transaction


def theorem_b_transitive_closure() -> None:
    print("=" * 72)
    print("Theorem B: no FO weakest precondition for transitive closure")
    print("=" * 72)
    constraint = totally_connected()
    one_cycle, two_cycles = single_cycle_family(3), double_cycle_family(3)
    oracle = SemanticPrecondition(tc_transaction(), constraint)
    print(f"  tc(C^1_3) |= forall x y E(x,y):  {oracle.holds(one_cycle)}")
    print(f"  tc(C^2_3) |= forall x y E(x,y):  {oracle.holds(two_cycles)}")
    print(f"  duplicator wins the 2-round EF game on C^1_3 vs C^2_3: "
          f"{duplicator_wins(one_cycle, two_cycles, 2)}")
    print("  -> any FO precondition of rank <= 2 would have to agree on the two"
          " graphs, but the true precondition (connectivity) does not.\n")


def claim3_same_generation(radius: int = 2) -> None:
    print("=" * 72)
    print("Theorem 2, Claim 3: same-generation and the G_{n,n} family")
    print("=" * 72)
    n = 2 * radius + 2
    balanced, skewed = two_branch_tree(n, n), two_branch_tree(n - 1, n + 1)
    print(f"  r = {radius}, n = {n}")
    print(f"  identical {radius}-type censuses: "
          f"{same_type_counts(balanced, skewed, radius)} "
          f"({len(type_census(balanced, radius))} distinct types)")
    sg_balanced, sg_skewed = same_generation(balanced), same_generation(skewed)
    print(f"  sg(G_nn)   |= 'exactly 1 isolated node': "
          f"{evaluate(alpha_isolated_exactly(1), sg_balanced)}")
    print(f"  sg(G_n-1,n+1) |= 'exactly 3 isolated nodes': "
          f"{evaluate(alpha_isolated_exactly(3), sg_skewed)}")
    print("  -> the precondition of the isolated-node constraint would separate"
          " Hanf-equivalent structures, so it is not first-order.\n")


def theorem7_chain_transaction() -> None:
    print("=" * 72)
    print("Theorem 7: the chain transaction is verifiable over FO")
    print("=" * 72)
    transaction = ChainTransaction()
    calculator = ChainWpcCalculator(transaction)
    sample = [chain(4), chain_and_cycles(3, [4]), two_branch_tree(2, 2), chain(7)]
    print(f"{'constraint':<42} {'rank':>4} {'wpc rank':>9} {'exact on sample':>16}")
    for text in [
        "forall x y . E(x, y)",
        "exists x y . E(x, y) & x != y",
        "exists x y z . E(x, y) & E(y, z) & x != z",
    ]:
        constraint = parse(text)
        precondition = calculator.wpc(constraint)
        exact = check_wpc(transaction, constraint, precondition, sample)
        print(f"{text:<42} {constraint.quantifier_rank():>4} "
              f"{precondition.quantifier_rank():>9} {str(exact):>16}")
    print("  -> wpc rank grows like 2^rank (Corollary 3).\n")


def proposition5_constants() -> None:
    print("=" * 72)
    print("Proposition 5: one constant destroys verifiability")
    print("=" * 72)
    transaction = ChainTransaction()
    family = [
        chain(3),
        chain(3, labels=["c", 1, 2]),
        chain_and_cycles(2, [3], labels=[0, 1, "c", 3, 4]),
        single_cycle_family(2),
    ]
    candidates = {
        "true": parse("true"),
        "psi_CC": psi_cc(),
        "alpha_c itself": proposition5_constraint("c"),
    }
    for name, candidate in candidates.items():
        witness = chain_test_reduction(candidate, "c", family, transaction)
        status = "refuted" if witness is not None else "survives this family"
        print(f"  candidate precondition {name:<16}: {status}")
    print("  -> every syntactic candidate fails; with the constant c available"
          " the transaction has no weakest precondition at all.\n")


def main() -> None:
    theorem_b_transitive_closure()
    claim3_same_generation()
    theorem7_chain_transaction()
    proposition5_constants()


if __name__ == "__main__":
    main()
