"""Integrity maintenance: run-time roll-back vs. static verification.

This is the paper's motivating scenario.  A referral-network database must
keep two constraints true while a stream of update transactions runs:

* ``acyclic-ish``: nobody refers themselves (no loops), and
* ``reciprocity``: every account that refers someone is itself referred.

The workload mixes safe transactions with ones that would violate the
constraints.  We execute it under three maintenance policies and compare what
each costs and what each lets through:

* ``unchecked``      — no integrity checking (violations slip in),
* ``runtime-check``  — execute, re-check both constraints, roll back on
  violation (the classical, expensive approach),
* ``static-precondition`` — evaluate precomputed weakest preconditions on the
  *current* state and refuse unsafe transactions up front (the paper's
  recipe); nothing is ever rolled back.

Run with:  python examples/integrity_maintenance.py
"""

import random

from repro.db import Database, GRAPH_SCHEMA, Store
from repro.logic import parse
from repro.core import (
    Constraint,
    IntegrityMaintainer,
    PrerelationSpec,
    RuntimeCheckPolicy,
    SemanticPrecondition,
    StaticPreconditionPolicy,
    UncheckedPolicy,
    WpcCalculator,
)
from repro.transactions import DeleteWhere, FOProgram, InsertTuple, InsertWhere


NO_LOOPS = parse("forall x . ~E(x, x)")
RECIPROCITY = parse("forall x . (exists y . E(x, y)) -> exists z . E(z, x)")


def build_workload(size: int, seed: int = 0):
    """A mix of safe and unsafe first-order transactions."""
    rng = random.Random(seed)
    workload = []
    for step in range(size):
        kind = rng.choice(["symmetrise", "close", "insert", "insert-loop", "prune"])
        if kind == "symmetrise":
            workload.append(FOProgram(
                [InsertWhere("E", ("x", "y"), parse("E(y, x)"))], name="symmetrise"))
        elif kind == "close":
            workload.append(FOProgram(
                [InsertWhere("E", ("x", "y"), parse("exists z . E(x, z) & E(z, y) & x != y"))],
                name="close"))
        elif kind == "insert":
            a, b = rng.randint(0, 9), rng.randint(10, 19)
            workload.append(FOProgram([InsertTuple("E", a, b), InsertTuple("E", b, a)],
                                      name=f"insert-{a}-{b}"))
        elif kind == "insert-loop":
            a = rng.randint(0, 19)
            workload.append(FOProgram([InsertTuple("E", a, a)], name=f"insert-loop-{a}"))
        else:
            workload.append(FOProgram(
                [DeleteWhere("E", ("x", "y"), parse("x = y"))], name="prune-loops"))
    return workload


def constraints_with_preconditions(workload):
    """Attach a weakest precondition (per transaction) to each constraint.

    Distinct transaction programs get their own precondition; this is the
    "compile once, evaluate cheaply at run time" part of the static approach.
    """
    by_name = {}
    for program in workload:
        by_name.setdefault(program.name, program)
    constraints = []
    for label, formula in [("no-loops", NO_LOOPS), ("reciprocity", RECIPROCITY)]:
        preconditions = {}
        for name, program in by_name.items():
            spec = PrerelationSpec.from_fo_program(program)
            preconditions[name] = WpcCalculator(spec).wpc(formula)
        constraints.append(Constraint(label, formula, preconditions))
    return constraints


def initial_database(accounts: int = 12, seed: int = 1) -> Database:
    rng = random.Random(seed)
    edges = set()
    for a in range(accounts):
        b = rng.randrange(accounts)
        if a != b:
            edges.add((a, b))
            edges.add((b, a))
    return Database.graph(edges)


def main() -> None:
    workload = build_workload(40, seed=3)
    constraints = constraints_with_preconditions(workload)
    start = initial_database()

    print(f"workload: {len(workload)} transactions, "
          f"{len({t.name for t in workload})} distinct programs")
    print(f"initial database: {len(start.edges)} edges, "
          f"{len(start.active_domain)} accounts\n")

    reports = []
    for policy in (UncheckedPolicy(), RuntimeCheckPolicy(), StaticPreconditionPolicy()):
        store = Store(GRAPH_SCHEMA, start)
        maintainer = IntegrityMaintainer(store, constraints, policy)
        report = maintainer.run(workload)
        reports.append((report, maintainer.invariant_holds(), store))

    header = (f"{'policy':<22} {'committed':>9} {'rejected':>9} {'rolled back':>12} "
              f"{'missed':>7} {'invariant':>10} {'ms':>8}")
    print(header)
    print("-" * len(header))
    for report, invariant, _store in reports:
        print(f"{report.policy:<22} {report.committed:>9} {report.rejected_statically:>9} "
              f"{report.rolled_back:>12} {report.violations_missed:>7} "
              f"{str(invariant):>10} {report.wall_time * 1000:>8.1f}")

    print("\nThe runtime and static policies end in the same state; only the "
          "static policy gets there without a single roll-back.")


if __name__ == "__main__":
    main()
