"""Quickstart: weakest preconditions for a first-order transaction.

The scenario: a small social-graph database with a "follows" edge relation.
We write a Qian-style transaction that symmetrises the graph (everyone follows
back), state two integrity constraints, compute their weakest preconditions
with the Theorem 8 algorithm, and show that the guarded transaction
``if wpc then T else abort`` never violates the constraints — with no
run-time roll-back.

Run with:  python examples/quickstart.py
"""

from repro.db import Database
from repro.logic import evaluate, parse
from repro.core import PrerelationSpec, WpcCalculator, make_safe
from repro.transactions import FOProgram, InsertWhere, TransactionAbortedSignal


def main() -> None:
    # 1. A database: E(x, y) means "x follows y".
    db = Database.graph([("ann", "bob"), ("bob", "cho"), ("cho", "ann"), ("dan", "dan")])
    print("initial database:", sorted(db.edges))

    # 2. A transaction in the first-order transaction language: make the
    #    follow relation symmetric.
    symmetrise = FOProgram(
        [InsertWhere("E", ("x", "y"), parse("E(y, x)"))],
        name="symmetrise",
    )

    # 3. Integrity constraints, written in plain first-order logic.
    no_self_follow = parse("forall x . ~E(x, x)")
    everyone_followed = parse("forall x . (exists y . E(x, y)) -> exists z . E(z, x)")

    # 4. The transaction admits prerelations (it is first-order definable), so
    #    the Theorem 8 algorithm gives weakest preconditions syntactically.
    spec = PrerelationSpec.from_fo_program(symmetrise)
    calculator = WpcCalculator(spec)

    for name, constraint in [("no-self-follow", no_self_follow),
                             ("everyone-followed", everyone_followed)]:
        precondition = calculator.wpc(constraint)
        print(f"\nconstraint      : {name}")
        print(f"  holds now?    : {evaluate(constraint, db)}")
        print(f"  wpc size/rank : {precondition.size()} nodes, "
              f"rank {precondition.quantifier_rank()}")
        print(f"  wpc holds now?: {evaluate(precondition, db)}")
        after = symmetrise.apply(db)
        print(f"  holds after T : {evaluate(constraint, after)} "
              "(must equal the wpc verdict)")

    # 5. The guarded transaction is safe by construction.
    precondition = calculator.wpc(no_self_follow)
    safe = make_safe(spec.as_transaction(), precondition, on_abort="raise")
    try:
        result = safe.apply(db)
        print("\nguarded transaction committed; edges now:", sorted(result.edges))
    except TransactionAbortedSignal:
        print("\nguarded transaction refused to run (the post-state would "
              "violate no-self-follow)")

    # The database with the self-loop removed passes the guard.
    clean = db.delete("E", ("dan", "dan"))
    result = safe.apply(clean)
    print("on the cleaned database it commits; edges:", sorted(result.edges))


if __name__ == "__main__":
    main()
