"""Static transaction verification for a schema-maintenance tool.

Scenario: a catalogue database stores a directed "part-of" graph.  A release
pipeline ships a set of candidate maintenance transactions and the integrity
team wants to know, *before* deployment,

1. which transactions provably preserve each constraint on every database
   (checked here exhaustively on all small databases and randomly on larger
   ones — the bounded rendering of the undecidable ``Preserve`` problem), and
2. for the ones that do not, what the guarded (safe) version looks like and
   when it would refuse to run.

Run with:  python examples/transaction_verification.py
"""

from repro.db import all_graphs, chain, random_graph
from repro.logic import evaluate, parse
from repro.core import (
    PrerelationSpec,
    WpcCalculator,
    make_safe,
    preserves_bounded,
    preserves_randomized,
)
from repro.transactions import DeleteWhere, FOProgram, InsertWhere, SetRelation


CONSTRAINTS = {
    "no-self-part": parse("forall x . ~E(x, x)"),
    "no-orphans": parse("forall x . (exists y . E(y, x)) | (exists y . E(x, y))"),
    "anti-symmetric": parse("forall x y . E(x, y) -> ~E(y, x) | x = y"),
}

CANDIDATE_TRANSACTIONS = [
    FOProgram([DeleteWhere("E", ("x", "y"), parse("x = y"))], name="drop-self-parts"),
    FOProgram([InsertWhere("E", ("x", "y"), parse("E(y, x)"))], name="mirror"),
    FOProgram(
        [InsertWhere("E", ("x", "y"), parse("exists z . E(x, z) & E(z, y) & x != y"))],
        name="compose-parts",
    ),
    FOProgram(
        [SetRelation("E", ("x", "y"), parse("E(x, y) & x != y"))],
        name="normalise",
    ),
]


def verification_matrix():
    """For every (transaction, constraint) pair decide bounded preservation."""
    print(f"{'transaction':<16}", end="")
    for name in CONSTRAINTS:
        print(f"{name:>16}", end="")
    print()
    print("-" * (16 + 16 * len(CONSTRAINTS)))

    results = {}
    for program in CANDIDATE_TRANSACTIONS:
        spec = PrerelationSpec.from_fo_program(program)
        transaction = spec.as_transaction()
        print(f"{program.name:<16}", end="")
        for cname, constraint in CONSTRAINTS.items():
            exhaustive, witness = preserves_bounded(transaction, constraint, max_nodes=3)
            sampled, _ = preserves_randomized(
                transaction, constraint, samples=40, max_nodes=6, seed=11
            )
            verdict = exhaustive and sampled
            results[(program.name, cname)] = (verdict, witness)
            print(f"{'preserves' if verdict else 'VIOLATES':>16}", end="")
        print()
    return results


def show_guarded_repair(results):
    """For a violating pair, derive the guard and show it working."""
    offender = next(
        (pair for pair, (verdict, _w) in results.items() if not verdict), None
    )
    if offender is None:
        print("\nall candidate transactions already preserve all constraints")
        return
    program_name, constraint_name = offender
    program = next(p for p in CANDIDATE_TRANSACTIONS if p.name == program_name)
    constraint = CONSTRAINTS[constraint_name]
    witness = results[offender][1]

    print(f"\n'{program_name}' violates '{constraint_name}'.")
    if witness is not None:
        print(f"  counterexample database: {sorted(witness.edges)}")

    spec = PrerelationSpec.from_fo_program(program)
    precondition = WpcCalculator(spec).wpc(constraint)
    safe = make_safe(spec.as_transaction(), precondition, on_abort="identity")
    print(f"  weakest precondition computed: size {precondition.size()}, "
          f"rank {precondition.quantifier_rank()}")

    ok, _ = preserves_bounded(safe, constraint, max_nodes=3)
    print(f"  guarded version preserves the constraint on all small databases: {ok}")

    sample = random_graph(6, 0.25, seed=2)
    allowed = evaluate(precondition, sample)
    print(f"  on a random 6-node catalogue the guard "
          f"{'allows' if allowed else 'refuses'} the transaction")


def main() -> None:
    results = verification_matrix()
    show_guarded_repair(results)


if __name__ == "__main__":
    main()
