"""Setuptools entry point.

NOTE: this project deliberately ships a ``setup.py``/``setup.cfg`` pair instead
of a ``pyproject.toml`` build-system section.  The reproduction environment is
fully offline; a ``pyproject.toml`` would make ``pip install -e .`` create an
isolated build environment and try to download setuptools/wheel, which fails
without network access.  The legacy path used here installs with the
interpreter's existing setuptools and works offline.
"""

from setuptools import setup

setup()
