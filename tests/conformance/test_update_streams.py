"""Conformance along update streams: the matrix agrees at every step.

A random database evolves through a random stream of deltas
(``apply_delta``, the provenance-recording fast path every functional
update and store snapshot takes); at each step every backend configuration
must agree with the oracle — this is what exercises the *incremental* code
paths (the compiled engine's delta rules, the sharded engine's shard-level
partial caches) rather than cold evaluation.

The sharded engine additionally runs in ``delta="verify"`` mode here, so
every incremental result is shadowed by a full execution inside the backend
itself, and the sharded database's partition invariants (disjoint shards,
union equals the merged relations, stable routing) are asserted along the
way.
"""

from __future__ import annotations

from hypothesis import given
from hypothesis import strategies as st

from repro.db import Database, ShardedDatabase, shard_of
from repro.engine import NaiveBackend, ShardedBackend

from strategies import (
    SHARD_COUNTS,
    backend_matrix,
    formulas,
    graphs,
    maybe_seed,
    update_streams,
)

ORACLE = NaiveBackend()
MATRIX = backend_matrix() + [
    ("sharded-4-verify", ShardedBackend(shards=4, delta="verify")),
]


def check_partition_invariants(sharded: ShardedDatabase) -> None:
    shards = sharded.shards
    assert len(shards) == sharded.num_shards
    for name in sharded.schema.relation_names:
        merged = frozenset().union(*(s.relation(name) for s in shards))
        assert merged == sharded.relation(name)
        total = sum(len(s.relation(name)) for s in shards)
        assert total == len(sharded.relation(name)), "shards must be disjoint"
        for index, shard in enumerate(shards):
            for row in shard.relation(name):
                assert shard_of(row[0], sharded.num_shards) == index


@maybe_seed
@given(formula=formulas(max_leaves=6), db=graphs(), stream=update_streams())
def test_stream_conformance(formula, db, stream):
    variables = sorted(formula.free_variables())
    current = db
    for step, delta in enumerate(stream):
        current = current.apply_delta(delta)
        expected = ORACLE.extension(formula, current, variables)
        for name, backend in MATRIX:
            got = backend.extension(formula, current, variables)
            assert got == expected, (
                f"[{name}] diverged at stream step {step} for {formula}: "
                f"{sorted(got, key=repr)[:5]} != {sorted(expected, key=repr)[:5]}"
            )


@maybe_seed
@given(db=graphs(), stream=update_streams(), count=st.sampled_from(SHARD_COUNTS))
def test_sharded_stream_invariants(db, stream, count):
    """Sharded databases stay correctly partitioned along apply_delta chains."""
    current = ShardedDatabase.from_database(db, count)
    check_partition_invariants(current)
    plain = db
    for delta in stream:
        previous = current
        current = current.apply_delta(delta)
        plain = plain.apply_delta(delta)
        assert isinstance(current, ShardedDatabase)
        assert current == plain
        check_partition_invariants(current)
        # untouched shards are carried over as the same objects — the
        # invariant the backend's shard-level caches key on
        touched = {
            shard_of(row[0], count)
            for name in delta.touched()
            for row in delta.rows_in(name)
        }
        for index, (before, after) in enumerate(
            zip(previous.shards, current.shards)
        ):
            if index not in touched:
                assert before is after


@maybe_seed
@given(db=graphs(), stream=update_streams(length=4))
def test_store_snapshot_stream_conformance(db, stream):
    """Sharded store snapshots agree with plain store snapshots step by step."""
    from repro.db import Store

    plain = Store(db.schema, db)
    sharded = Store(db.schema, db, shards=4)
    for delta in stream:
        for store in (plain, sharded):
            store.begin()
            store.apply_delta(delta)
            store.commit_unchecked()
        a = plain.committed_snapshot()
        b = sharded.committed_snapshot()
        assert isinstance(b, ShardedDatabase)
        assert a == b
        check_partition_invariants(b)
