"""Cross-configuration conformance: every backend agrees with the oracle.

The matrix is **backend × delta mode × shard count**: the compiled engine
with incremental delta evaluation on and off, and the sharded parallel
engine at 1, 2 and 4 shards — all compared against the naive recursive
interpreter (the semantics oracle) on grammar-generated formulas crossed
with random graph databases, under default and explicitly enlarged/shrunk
quantification domains.

The generators live in ``tests/strategies.py`` (shared with the property
suites); ``REPRO_SEED`` pins them for exact replay, and every failure
message names the configuration that diverged.
"""

from __future__ import annotations

from hypothesis import given
from hypothesis import strategies as st

from repro.db import Database, ShardedDatabase, chain, cycle, random_graph
from repro.engine import NaiveBackend
from repro.logic import parse
from repro.logic.syntax import Atom, BOTTOM, CountingExists, Eq, Exists, Forall, Or
from repro.logic.terms import Const

from strategies import (
    CONSTANTS,
    SHARD_COUNTS,
    VARIABLES,
    backend_matrix,
    formulas,
    graphs,
    maybe_seed,
)

ORACLE = NaiveBackend()
MATRIX = backend_matrix()


def assert_matrix_extension(formula, db, variables, domain=None):
    expected = ORACLE.extension(formula, db, variables, domain=domain)
    for name, backend in MATRIX:
        got = backend.extension(formula, db, variables, domain=domain)
        assert got == expected, (
            f"[{name}] extension mismatch for {formula} on {db!r} "
            f"(domain={domain!r}): {sorted(got, key=repr)[:5]} != "
            f"{sorted(expected, key=repr)[:5]}"
        )


def assert_matrix_sentence(sentence, db):
    expected = ORACLE.evaluate(sentence, db)
    for name, backend in MATRIX:
        got = backend.evaluate(sentence, db)
        assert got == expected, (
            f"[{name}] sentence mismatch for {sentence} on {db!r}: "
            f"{got} != {expected}"
        )


@maybe_seed
@given(formula=formulas(), db=graphs())
def test_extensions_conform(formula, db):
    assert_matrix_extension(formula, db, sorted(formula.free_variables()))


@maybe_seed
@given(formula=formulas(), db=graphs())
def test_sentences_conform(formula, db):
    closed = formula
    for variable in sorted(formula.free_variables()):
        closed = Exists(variable, closed)
    assert_matrix_sentence(closed, db)


@maybe_seed
@given(formula=formulas(), db=graphs())
def test_extra_variables_conform(formula, db):
    """Variables beyond the free ones range over the domain in every backend."""
    variables = sorted(set(VARIABLES) | formula.free_variables())
    assert_matrix_extension(formula, db, variables)


@maybe_seed
@given(
    formula=formulas(),
    db=graphs(),
    extra=st.frozensets(st.integers(10, 13), max_size=3),
)
def test_enlarged_domain_conforms(formula, db, extra):
    """Gamma(D)-style quantification domains larger than the active domain."""
    domain = db.active_domain | extra
    assert_matrix_extension(formula, db, sorted(formula.free_variables()), domain)


@maybe_seed
@given(formula=formulas(), db=graphs())
def test_shrunk_domain_conforms(formula, db):
    domain = frozenset(
        v for v in db.active_domain if isinstance(v, int) and v % 2 == 0
    )
    assert_matrix_extension(formula, db, sorted(formula.free_variables()), domain)


@maybe_seed
@given(db=graphs(), value=st.sampled_from(CONSTANTS), threshold=st.integers(0, 4))
def test_counting_with_constants_conforms(db, value, threshold):
    """Counting bodies mentioning (possibly inactive) constants."""
    formula = CountingExists(
        "y", threshold, Or(Atom("E", "x", "y"), Eq("y", Const(value)))
    )
    assert_matrix_extension(formula, db, ["x"])


@maybe_seed
@given(db=graphs(), count=st.sampled_from(SHARD_COUNTS))
def test_sharded_database_input_conforms(db, count):
    """A natively sharded database evaluates like its merged contents."""
    sharded = ShardedDatabase.from_database(db, count)
    assert sharded == db
    formula = parse("forall x . forall y . E(x, y) -> (exists z . E(y, z))")
    assert_matrix_sentence(formula, sharded)


class TestDeterministicCorners:
    """Hand-picked corners the random sweep visits rarely, across the matrix."""

    def test_empty_database(self):
        empty = Database.graph([])
        assert_matrix_sentence(parse("forall x . E(x, x)"), empty)
        assert_matrix_sentence(parse("exists x . x = x"), empty)
        assert_matrix_extension(CountingExists("x", 0, BOTTOM), empty, [])

    def test_constants_outside_active_domain(self):
        db = chain(3)
        assert_matrix_sentence(parse("E(0, 1) & ~E(99, 100)"), db)
        assert_matrix_sentence(parse("exists x . x = 99"), db)
        assert_matrix_extension(Eq("x", 99), db, ["x"])
        assert_matrix_sentence(parse("forall x . ~(x = 99)"), db)

    def test_vacuous_quantifiers(self):
        for db in (Database.graph([]), cycle(2)):
            assert_matrix_sentence(Exists("x", parse("x = x")), db)
            assert_matrix_sentence(Forall("x", BOTTOM), db)

    def test_counting_thresholds(self):
        db = Database.graph([(0, 1), (0, 2), (0, 3), (1, 2)])
        for threshold in range(5):
            assert_matrix_extension(
                CountingExists("y", threshold, Atom("E", "x", "y")), db, ["x"]
            )

    def test_deep_alternation(self):
        db = random_graph(5, 0.4, seed=13)
        formula = parse(
            "forall x . exists y . forall z . E(x, y) -> (E(y, z) -> E(x, z))"
        )
        assert_matrix_sentence(formula, db)

    def test_interpreted_signature(self):
        from repro.logic import arithmetic_signature

        signature = arithmetic_signature()
        db = chain(4)
        formula = parse("forall x y . E(x, y) -> leq(x, y)", predicates=["leq"])
        expected = ORACLE.evaluate(formula, db, signature=signature)
        for name, backend in MATRIX:
            got = backend.evaluate(formula, db, signature=signature)
            assert got == expected, f"[{name}] interpreted-signature mismatch"
