"""Kill-and-recover conformance: a recovered store equals a never-crashed one.

The durable engine's headline obligation, as a property over random
histories: drive the same update stream (the shared ``tests/strategies.py``
generators) into a WAL-backed store and an in-memory reference, crash the
durable one at an arbitrary point with everything re-driven up to the crash,
recover, finish the stream on both — the final states must be *equal*
(``Database.__eq__``, which compares schema and relations) and
content-hash-identical.  The sweep covers plain and sharded stores; the CI
matrix legs (compiled/delta on and off, sharded) re-run this file under every
backend configuration.
"""

from __future__ import annotations

import shutil
import tempfile

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.db import Database, GRAPH_SCHEMA, ShardedDatabase, Store, WalStorageEngine

from strategies import maybe_seed, update_streams

#: the shard axis: a plain store and a sharded-snapshot store must both
#: recover; the shard count is a property of the snapshot layer, not of the
#: durable log, so a log written plain may even be recovered sharded
SHARD_AXIS = (None, 2)


def drive(store: Store, stream) -> None:
    for delta in stream:
        store.begin()
        store.apply_delta(delta)
        store.commit_unchecked()


class TestKillAndRecover:
    @maybe_seed
    @given(stream=update_streams(length=8), data=st.data())
    @settings(max_examples=40, deadline=None)
    @pytest.mark.parametrize("shards", SHARD_AXIS)
    def test_recovered_equals_never_crashed(self, shards, stream, data):
        crash_at = data.draw(
            st.integers(0, len(stream)), label="crash after step"
        )
        directory = tempfile.mkdtemp(prefix="repro-recover-")
        try:
            reference = Store(GRAPH_SCHEMA, shards=shards)
            durable = Store(
                GRAPH_SCHEMA,
                shards=shards,
                engine=WalStorageEngine(directory, checkpoint_interval=3),
            )
            drive(reference, stream)
            drive(durable, stream[:crash_at])
            durable.engine.crash()

            recovered = Store(
                GRAPH_SCHEMA,
                shards=shards,
                engine=WalStorageEngine(directory, checkpoint_interval=3),
            )
            drive(recovered, stream[crash_at:])

            a = reference.committed_snapshot()
            b = recovered.committed_snapshot()
            assert a == b
            assert hash(a) == hash(b)      # the patchable content digest agrees
            assert reference.version == recovered.version
            if shards is not None:
                assert isinstance(b, ShardedDatabase)
                assert b.num_shards == shards
            recovered.engine.crash()
        finally:
            shutil.rmtree(directory, ignore_errors=True)

    @maybe_seed
    @given(stream=update_streams(length=6))
    @settings(max_examples=25, deadline=None)
    def test_double_crash_still_converges(self, stream):
        """Crash, recover, crash again mid-way: no acked commit is ever lost."""
        directory = tempfile.mkdtemp(prefix="repro-recover-")
        try:
            reference = Store(GRAPH_SCHEMA)
            drive(reference, stream)

            mid = len(stream) // 2
            first = Store(GRAPH_SCHEMA, engine=WalStorageEngine(directory))
            drive(first, stream[:mid])
            first.engine.crash()

            second = Store(GRAPH_SCHEMA, engine=WalStorageEngine(directory))
            drive(second, stream[mid:])
            second.engine.crash()

            final = Store(GRAPH_SCHEMA, engine=WalStorageEngine(directory))
            assert final.committed_snapshot() == reference.committed_snapshot()
            assert final.version == reference.version
            final.engine.crash()
        finally:
            shutil.rmtree(directory, ignore_errors=True)

    @maybe_seed
    @given(stream=update_streams(length=6))
    @settings(max_examples=25, deadline=None)
    def test_plain_log_recovers_into_sharded_store(self, stream):
        """Durability is below the snapshot layer: shard counts may differ
        across lifetimes and the recovered content is still identical."""
        directory = tempfile.mkdtemp(prefix="repro-recover-")
        try:
            writer = Store(GRAPH_SCHEMA, engine=WalStorageEngine(directory))
            drive(writer, stream)
            expected = writer.committed_snapshot()
            writer.engine.crash()

            sharded = Store(
                GRAPH_SCHEMA, shards=2, engine=WalStorageEngine(directory)
            )
            got = sharded.committed_snapshot()
            assert isinstance(got, ShardedDatabase)
            assert got == expected
            assert hash(got) == hash(expected)
            sharded.engine.crash()
        finally:
            shutil.rmtree(directory, ignore_errors=True)


class TestRecoveredStoreBehaviour:
    """Post-recovery semantics: checkers, RYOW and unchecked commits."""

    def _recovered_pair(self, directory):
        store = Store(GRAPH_SCHEMA, engine=WalStorageEngine(directory))
        store.begin()
        store.insert("E", (1, 2))
        store.insert("E", (2, 3))
        store.commit_unchecked()
        store.engine.crash()
        return Store(GRAPH_SCHEMA, engine=WalStorageEngine(directory))

    def test_reregistered_checkers_see_recovered_state(self, tmp_path):
        recovered = self._recovered_pair(str(tmp_path))
        seen = []
        recovered.register_checker(
            "spy", lambda db: (seen.append(db), True)[1]
        )
        recovered.begin()
        recovered.insert("E", (3, 4))
        recovered.commit()
        # the checker ran against recovered-state + pending writes
        assert seen and seen[0] == Database.graph([(1, 2), (2, 3), (3, 4)])
        recovered.close()

    def test_checker_rejection_rolls_back_over_recovered_state(self, tmp_path):
        from repro.db import TransactionAborted

        recovered = self._recovered_pair(str(tmp_path))
        recovered.register_checker("at-most-2", lambda db: db.cardinality("E") <= 2)
        recovered.begin()
        recovered.insert("E", (9, 9))
        with pytest.raises(TransactionAborted):
            recovered.commit()
        assert recovered.committed_snapshot() == Database.graph([(1, 2), (2, 3)])
        recovered.close()

    def test_commit_unchecked_after_recovery_is_durable(self, tmp_path):
        recovered = self._recovered_pair(str(tmp_path))
        recovered.register_checker("never", lambda db: False)
        recovered.begin()
        recovered.insert("E", (9, 9))
        recovered.commit_unchecked()      # bypasses the rejecting checker
        assert recovered.contains("E", (9, 9))
        recovered.engine.crash()

        reread = Store(GRAPH_SCHEMA, engine=WalStorageEngine(str(tmp_path)))
        assert reread.contains("E", (9, 9))
        reread.close()

    def test_ryow_preserved_after_recovery(self, tmp_path):
        recovered = self._recovered_pair(str(tmp_path))
        recovered.begin()
        recovered.insert("E", (5, 6))
        recovered.delete("E", (1, 2))
        # reads during the open transaction overlay the log on recovered rows
        assert recovered.contains("E", (5, 6))
        assert not recovered.contains("E", (1, 2))
        assert set(recovered.scan("E")) == {(2, 3), (5, 6)}
        # committed view stays pre-transaction
        assert recovered.committed_snapshot() == Database.graph([(1, 2), (2, 3)])
        recovered.rollback()
        assert set(recovered.scan("E")) == {(1, 2), (2, 3)}
        recovered.close()
