"""Chaos conformance: random fault schedules through the real socket.

Hypothesis draws a fault plan — seed, sites, probabilities, schedules —
installs it under a live server backed by a real WAL, drives transactions
over TCP, crashes the engine, recovers, and checks the serving contract
held under fire:

* **acked implies durable** — every edge whose response said ``committed``
  is present after recovery;
* **nothing denied appears** — an edge whose *final* response was an abort,
  a rejection, or a shed must not be in the recovered state (those paths
  never mutate the store);
* **replay equality** — the recovered database equals an in-memory oracle
  that applied exactly the acked commits (requests whose connection died
  mid-response are indeterminate and excluded from both directions).
"""

from __future__ import annotations

import shutil
import tempfile

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import faults
from repro.db import GRAPH_SCHEMA, Store, WalStorageEngine
from repro.serve import ServeClient, ServerThread, preregister
from repro.service.workloads import (
    build_service,
    forward_graph,
    standard_constraints,
)

from strategies import maybe_seed

INITIAL_SEED = 11
ATTEMPTS = 10


#: the chaos menu: (site, exception kind) pairs the schedule can draw from.
#: every entry is a commit-path failure the service must absorb into a
#: typed outcome — never a raw exception, never a wrong ack.
FAULT_MENU = (
    ("wal.fsync", "storage"),
    ("wal.append", "oserror"),
    ("wal.append.torn", "fault"),
    ("storage.commit_batch", "storage"),
    ("wal.checkpoint.write", "oserror"),
)


@st.composite
def fault_plans(draw):
    plan = faults.FaultPlan(seed=draw(st.integers(0, 2**16)))
    for site, exc in draw(
        st.lists(st.sampled_from(FAULT_MENU), unique=True, min_size=1, max_size=3)
    ):
        plan.site(
            site,
            probability=draw(st.floats(0.1, 0.6)),
            exc=exc,
            limit=draw(st.integers(1, 4)),
        )
    if draw(st.booleans()):
        plan.site("serve.write.reset", hits=(draw(st.integers(1, ATTEMPTS)),))
    if draw(st.booleans()):
        plan.site("service.leader.stall", latency=0.002, exc="none")
    return plan


def _drive_chaos(directory, plan):
    """Run ATTEMPTS transactions under ``plan``; classify every edge."""
    engine = WalStorageEngine(str(directory), checkpoint_interval=3)
    service = build_service(
        forward_graph(20, 2, seed=INITIAL_SEED), commit_timeout=30.0, engine=engine
    )
    acked, denied, indeterminate = [], [], []
    try:
        with ServerThread(service) as harness:
            preregister(harness.server)
            host, port = harness.address
            client = ServeClient(host, port)
            faults.install(plan)
            try:
                for i in range(ATTEMPTS):
                    edge = (800 + i, 900 + i)
                    try:
                        status, payload = client.submit_retrying(
                            "link-forward", list(edge),
                            max_retries=2, backoff=0.005,
                        )
                    except ConnectionError:
                        # the response never arrived: the commit may or may
                        # not have happened — reconnect, mark indeterminate
                        indeterminate.append(edge)
                        client.close()
                        client = ServeClient(host, port)
                        continue
                    if status == 200 and payload["status"] == "committed":
                        acked.append(edge)
                    else:
                        denied.append(edge)
            finally:
                faults.uninstall()
                client.close()
        # kill -9 equivalent while the WAL is live, then release handles
        service.store.engine.crash()
    finally:
        faults.uninstall()
        service.close()
    return acked, denied, indeterminate


class TestChaosThroughTheSocket:
    @maybe_seed
    @given(plan=fault_plans())
    @settings(max_examples=10, deadline=None)
    def test_acked_durable_denied_absent_replay_equal(self, plan):
        directory = tempfile.mkdtemp(prefix="repro-chaos-")
        try:
            acked, denied, indeterminate = _drive_chaos(directory, plan)
            with Store(GRAPH_SCHEMA, engine=WalStorageEngine(directory)) as reborn:
                recovered = reborn.snapshot().relation("E")
                for edge in acked:
                    assert edge in recovered, (
                        f"acked edge {edge} lost — ack preceded durability "
                        f"(plan: {plan.report()})"
                    )
                for edge in denied:
                    assert edge not in recovered, (
                        f"denied edge {edge} appeared — a failed commit "
                        f"mutated state (plan: {plan.report()})"
                    )
                # replay equality vs the oracle: recovered state is exactly
                # initial + acked, modulo edges whose outcome we never saw
                oracle = Store(GRAPH_SCHEMA)
                oracle.begin()
                for edge in forward_graph(20, 2, seed=INITIAL_SEED).relation("E"):
                    oracle.insert("E", edge)
                for edge in acked:
                    oracle.insert("E", edge)
                oracle.commit_unchecked()
                expected = oracle.snapshot().relation("E")
                unexplained = (recovered - expected) | (expected - recovered)
                assert unexplained <= set(indeterminate), (
                    f"recovered state diverged from the acked-commit oracle "
                    f"beyond the indeterminate set: {unexplained} "
                    f"(plan: {plan.report()})"
                )
                assert all(c.holds(reborn.snapshot()) for c in standard_constraints())
        finally:
            shutil.rmtree(directory, ignore_errors=True)

    def test_fixed_schedule_replays_exactly(self):
        """A deterministic schedule with no connection faults: exact equality."""
        plan = (
            faults.FaultPlan(seed=3)
            .site("wal.fsync", exc="storage", hits=(2,))
            .site("storage.commit_batch", exc="storage", hits=(4,))
            .site("wal.checkpoint.write", exc="oserror", limit=1)
        )
        directory = tempfile.mkdtemp(prefix="repro-chaos-fixed-")
        try:
            acked, denied, indeterminate = _drive_chaos(directory, plan)
            assert not indeterminate  # no serve-layer faults in this plan
            # transient server-side retries absorb every injected failure:
            # all ten edges must have been acked despite the schedule
            assert len(acked) == ATTEMPTS
            with Store(GRAPH_SCHEMA, engine=WalStorageEngine(directory)) as reborn:
                recovered = reborn.snapshot().relation("E")
                assert recovered == (
                    frozenset(forward_graph(20, 2, seed=INITIAL_SEED).relation("E"))
                    | set(acked)
                )
        finally:
            shutil.rmtree(directory, ignore_errors=True)
