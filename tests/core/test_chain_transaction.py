"""Tests for the Theorem 7 transaction and its weakest-precondition calculators."""

import pytest

from repro.db import (
    Database,
    chain,
    chain_and_cycles,
    cycle,
    diagonal_graph,
    linear_order,
    transitive_closure,
    two_branch_tree,
)
from repro.fmt import BasicLocalSentence, LocalFormula, loop_local_formula
from repro.fmt.degree import degree_count
from repro.logic import evaluate, parse
from repro.logic.builder import (
    alpha_isolated_exactly,
    at_least_n_elements,
    has_nonloop_edge,
    has_some_edge,
    totally_connected,
)
from repro.core import (
    ChainTransaction,
    ChainWpcCalculator,
    WpcError,
    chain_transaction_datalog,
    check_wpc,
    diagonal_truth_profile,
    find_wpc_counterexample,
    linear_order_truth_profile,
)
from repro.transactions import is_generic_on


CONSTRAINTS = [
    totally_connected(),
    has_some_edge(),
    has_nonloop_edge(),
    parse("forall x . E(x, x)"),
    parse("forall x . exists y . E(x, y)"),
    parse("exists x . forall y . ~E(x, y)"),
    at_least_n_elements(3),
    alpha_isolated_exactly(2),
]


class TestChainTransactionSemantics:
    def test_cc_graph_maps_to_linear_order_of_chain(self):
        T = ChainTransaction()
        g = chain_and_cycles(4, [3, 2])
        result = T.apply(g)
        assert result == transitive_closure(chain(4))
        # the cycle components disappear entirely
        assert len(result.nodes) == 4

    def test_plain_chain(self):
        T = ChainTransaction()
        assert T.apply(chain(5)) == linear_order(5)

    def test_non_cc_graph_maps_to_diagonal(self):
        T = ChainTransaction()
        for g in [cycle(4), two_branch_tree(2, 2), Database.graph([(1, 1)])]:
            assert T.apply(g) == diagonal_graph(g.active_domain)

    def test_empty_graph(self):
        assert ChainTransaction().apply(Database.empty()).is_empty()

    def test_generic_and_polynomial(self):
        T = ChainTransaction()
        assert is_generic_on(T, [chain(4), cycle(3), chain_and_cycles(3, [2])],
                             extra_universe=[91, 92])

    def test_datalog_form_agrees(self, graphs_3, assorted_graphs):
        T, D = ChainTransaction(), chain_transaction_datalog()
        for g in list(graphs_3[:128]) + assorted_graphs:
            assert D.apply(g) == T.apply(g)


class TestTruthProfiles:
    def test_diagonal_profile(self):
        profile = diagonal_truth_profile(at_least_n_elements(2), 4)
        assert profile == [False, False, True, True, True]

    def test_linear_order_profile(self):
        profile = linear_order_truth_profile(totally_connected(), 3)
        # L_0 and L_1 have no edges at all: the constraint holds vacuously /
        # on the empty domain; L_2, L_3 are not complete with loops
        assert profile[0] is True
        assert profile[2] is False and profile[3] is False


class TestChainWpc:
    """T is in WPC(FO): the computed preconditions are exact."""

    @pytest.mark.parametrize("constraint", CONSTRAINTS, ids=[str(c)[:28] for c in CONSTRAINTS])
    def test_wpc_exact_on_small_graphs(self, constraint, graphs_3):
        T = ChainTransaction()
        precondition = ChainWpcCalculator(T).wpc(constraint)
        witness = find_wpc_counterexample(T, constraint, precondition, graphs_3[:256])
        assert witness is None, witness

    @pytest.mark.parametrize("constraint", CONSTRAINTS[:6], ids=[str(c)[:28] for c in CONSTRAINTS[:6]])
    def test_wpc_exact_on_named_families(self, constraint, assorted_graphs):
        T = ChainTransaction()
        precondition = ChainWpcCalculator(T).wpc(constraint)
        witness = find_wpc_counterexample(T, constraint, precondition, assorted_graphs)
        assert witness is None, witness

    def test_wpc_on_larger_cc_graphs(self):
        T = ChainTransaction()
        calculator = ChainWpcCalculator(T)
        constraint = parse("forall x . exists y . E(x, y) | E(y, x)")
        precondition = calculator.wpc(constraint)
        family = [chain_and_cycles(n, cycles) for n in (2, 5, 9) for cycles in ((), (3,), (2, 4))]
        assert check_wpc(T, constraint, precondition, family)

    def test_wpc_requires_pure_fo(self):
        calculator = ChainWpcCalculator()
        with pytest.raises(WpcError):
            calculator.wpc(parse("E(1, 2)"))       # constants: Proposition 5 territory
        with pytest.raises(WpcError):
            calculator.wpc(parse("E(x, y)"))       # not a sentence

    def test_corollary3_rank_blowup(self):
        """Corollary 3: for each n there is a rank-n sentence whose wpc has rank >= 2^n."""
        calculator = ChainWpcCalculator()
        witnesses = {
            2: has_some_edge(),
            3: parse("exists x y z . E(x, y) & E(y, z) & x != z"),
        }
        for n, constraint in witnesses.items():
            assert constraint.quantifier_rank() == n
            precondition = calculator.wpc(constraint)
            assert precondition.quantifier_rank() >= 2 ** n, (n, precondition.quantifier_rank())


class TestBasicLocalWpc:
    """The paper's literal case analysis for Gaifman basic local sentences."""

    def test_case2_r_zero(self, graphs_3):
        # two scattered loops (r = 0)
        sentence = BasicLocalSentence(2, 0, loop_local_formula())
        T = ChainTransaction()
        precondition = ChainWpcCalculator(T).wpc_basic_local(sentence)
        witness = find_wpc_counterexample(
            T, sentence.as_formula(), precondition, graphs_3[:200]
        )
        assert witness is None, witness

    def test_case1_two_distant_witnesses(self, graphs_3):
        sentence = BasicLocalSentence(2, 1, LocalFormula("x", 1, parse("exists y . E(x, y)")))
        T = ChainTransaction()
        precondition = ChainWpcCalculator(T).wpc_basic_local(sentence)
        witness = find_wpc_counterexample(
            T, sentence.as_formula(), precondition, graphs_3[:200]
        )
        assert witness is None, witness

    def test_case3_single_witness(self, graphs_2, assorted_graphs):
        sentence = BasicLocalSentence(1, 1, LocalFormula("x", 1, parse("exists y . E(x, y) & x != y")))
        T = ChainTransaction()
        precondition = ChainWpcCalculator(T).wpc_basic_local(sentence)
        witness = find_wpc_counterexample(
            T, sentence.as_formula(), precondition, list(graphs_2) + assorted_graphs
        )
        assert witness is None, witness


class TestNotInPRFO:
    """T is not in PR(FO): on chains it computes tc, violating bounded degrees."""

    def test_degree_count_blows_up_on_chains(self):
        T = ChainTransaction()
        counts = [degree_count(T.apply(chain(n))) for n in (4, 8, 16)]
        assert counts == sorted(counts)
        assert counts[-1] > counts[0]
        # while the inputs all have the same degree count
        assert len({degree_count(chain(n)) for n in (4, 8, 16)}) == 1
