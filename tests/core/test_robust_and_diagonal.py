"""Tests for robust verifiability (Section 5) and the Theorem 5 diagonalisation."""

import pytest

from repro.db import Database, all_graphs, chain, chain_and_cycles, cycle
from repro.logic import (
    InterpretedPredicate,
    Signature,
    arithmetic_signature,
    evaluate,
    parse,
    successor_signature,
    EMPTY_SIGNATURE,
)
from repro.logic.builder import psi_cc
from repro.core import (
    ChainTransaction,
    DiagonalConstruction,
    PrerelationSpec,
    SemanticPrecondition,
    SentenceEnumeration,
    WpcCalculator,
    chain_test_reduction,
    describe_graph_exactly,
    erase_constants,
    find_wpc_counterexample,
    generic_prerelation_from_wpc,
    proposition5_constraint,
    robustness_check,
)
from repro.logic.rewrite import AtomDefinition
from repro.transactions import (
    FOProgram,
    IdentityTransaction,
    InsertWhere,
    TransactionLanguage,
    complete_graph_transaction,
    diagonal_transaction,
    tc_transaction,
)


class TestRobustness:
    """Theorem 8 / Theorem E: prerelation transactions stay verifiable under
    every signature extension."""

    def test_robust_under_stock_extensions(self, graphs_2):
        program = FOProgram([InsertWhere("E", ("x", "y"), parse("E(y, x)"))], name="sym")
        spec = PrerelationSpec.from_fo_program(program)
        constraints = [
            ("no-loops", parse("forall x . ~E(x, x)")),
            ("has-edge", parse("exists x y . E(x, y)")),
            ("symmetric", parse("forall x y . E(x, y) -> E(y, x)")),
        ]
        extensions = [EMPTY_SIGNATURE, successor_signature(), arithmetic_signature()]
        result = robustness_check(spec, constraints, extensions, graphs_2)
        assert result.all_correct
        assert len(result.entries) == len(constraints) * len(extensions)

    def test_robust_with_omega_constraints(self, graphs_2):
        # the constraint itself uses a predicate from the extension
        program = FOProgram([InsertWhere("E", ("x", "y"), parse("E(y, x)"))], name="sym")
        spec = PrerelationSpec.from_fo_program(program)
        constraint = parse("forall x y . E(x, y) -> leq(x, y) | leq(y, x)", predicates=["leq"])
        precondition = WpcCalculator(spec).wpc(constraint)
        witness = find_wpc_counterexample(
            spec.as_transaction(), constraint, precondition, graphs_2,
            signature=arithmetic_signature(),
        )
        assert witness is None

    def test_extension_mismatch_rejected(self, graphs_2):
        program = FOProgram([InsertWhere("E", ("x", "y"), parse("E(y, x)"))], name="sym")
        spec = PrerelationSpec.from_fo_program(program)
        unrelated = Signature(predicates=(InterpretedPredicate("p", 1, lambda x: True),))
        # unrelated does extend the empty signature, so this succeeds;
        # a spec with its own symbols must be extended properly
        assert robustness_check(spec, [("t", parse("true"))], [unrelated], graphs_2).all_correct


class TestProposition5:
    """With constants, the Theorem 7 transaction loses its preconditions."""

    def test_constraint_shape(self):
        alpha = proposition5_constraint("c")
        assert "c" in {str(v) for v in alpha.constants()} or alpha.constants() == {"c"}
        g = chain(3)  # c not a node, has a non-loop edge
        assert evaluate(alpha, g)
        assert not evaluate(alpha, Database.graph([("c", 1)]))

    def test_candidate_preconditions_fail(self):
        """Every 'reasonable' FOc candidate disagrees with the semantic precondition
        somewhere — the experiment's executable rendering of Proposition 5."""
        T = ChainTransaction()
        family = (
            [chain(n) for n in (2, 3, 4, 5)]
            + [chain_and_cycles(n, [3]) for n in (2, 3, 4)]
            + [cycle(4), Database.graph([("c", "c")])]
            # graphs in which the constant c actually occurs: on the chain
            # component (so it survives into T(G)) and on a cycle component
            # (so it disappears from T(G)) — the crux of the Prop. 5 argument
            + [
                chain(3, labels=["c", 1, 2]),
                chain(3, labels=[1, "c", 2]),
                chain_and_cycles(2, [3], labels=[0, 1, "c", 3, 4]),
            ]
        )
        candidates = [
            parse("true"),
            parse("false"),
            psi_cc(),
            parse("exists x y . E(x, y) & x != y"),
            proposition5_constraint("c"),
        ]
        for candidate in candidates:
            assert chain_test_reduction(candidate, "c", family, T) is not None

    def test_semantic_precondition_still_works(self):
        # the non-syntactic oracle is of course exact -- the point of Prop. 5 is
        # that no FOc sentence can replace it
        T = ChainTransaction()
        alpha = proposition5_constraint("c")
        oracle = SemanticPrecondition(T, alpha)
        family = [chain(4), chain_and_cycles(3, [2]), cycle(3)]
        assert find_wpc_counterexample(T, alpha, oracle, family) is None


class TestProposition4Construction:
    """Generic transactions in WPC(FOc) admit prerelations: the constructive proof."""

    def test_prerelation_recovered_for_fo_definable_transaction(self, graphs_2):
        # use the symmetric-closure transaction; its wpc oracle for E(c, d) is
        # computed with the Theorem 8 calculator
        program = FOProgram([InsertWhere("E", ("x", "y"), parse("E(y, x)"))], name="sym")
        spec = PrerelationSpec.from_fo_program(program)
        calculator = WpcCalculator(spec)

        def wpc_of_edge_atom(c, d):
            from repro.logic.syntax import Atom
            from repro.logic.terms import Const

            return calculator.wpc(Atom("E", Const(c), Const(d)))

        definition = generic_prerelation_from_wpc(wpc_of_edge_atom)
        # the recovered beta(x, y) defines the transaction on sample graphs
        transaction = spec.as_transaction()
        recovered = PrerelationSpec.for_graph(definition.body, definition.variables,
                                              name="recovered")
        recovered_transaction = recovered.as_transaction()
        for g in graphs_2:
            assert recovered_transaction.apply(g) == transaction.apply(g)

    def test_erase_constants(self):
        formula = parse("E(x, 7) | (E(x, y) & x = 3)")
        erased = erase_constants(formula, {7, 3})
        assert erased.constants() == frozenset()
        # erasing is sound for graphs avoiding the constants
        g = Database.graph([(1, 2)])
        assert evaluate(erased, g, assignment={"x": 1, "y": 2}) == evaluate(
            formula, g, assignment={"x": 1, "y": 2}
        )


class TestDiagonalisation:
    """Theorem 5: the constructed transaction diagonalises any enumeration yet
    stays in WPC(FOc(Omega))."""

    @pytest.fixture(scope="class")
    def construction(self):
        language = TransactionLanguage(
            "toy",
            transactions=[
                IdentityTransaction(),
                tc_transaction(),
                diagonal_transaction(),
                complete_graph_transaction(),
            ],
        )
        return DiagonalConstruction(language, search_limit=3000)

    def test_p_and_q_are_strictly_monotone(self, construction):
        values_p = [construction.P(n) for n in range(1, 4)]
        values_q = [construction.Q(n) for n in range(1, 4)]
        assert values_p == sorted(set(values_p))
        assert all(p < q for p, q in zip(values_p, values_q))

    def test_h_pairs_are_equivalent_but_distinct(self, construction):
        i, j = construction.H(1, 2)
        assert construction.graphs[i] != construction.graphs[j]
        assert construction.sentences.equivalent_n(
            construction.graphs[i], construction.graphs[j], 2
        )

    def test_transaction_diagonalises_every_language_member(self, construction):
        depth = 4
        T = construction.transaction(depth)
        for n in range(1, depth + 1):
            g = construction.graphs[construction.P(n)]
            assert T.apply(g) != construction.language[n - 1].apply(g)

    def test_transaction_preserves_equivalence_classes(self, construction):
        depth = 4
        T = construction.transaction(depth)
        for n in range(1, depth + 1):
            index = construction.P(n)
            g = construction.graphs[index]
            # for i = P(j) the image is =_{j-1}-equivalent (and j - 1 >= n - 1
            # by monotonicity), which is what Lemma 6 needs
            assert construction.sentences.equivalent_n(T.apply(g), g, n - 1)

    def test_lemma6_precondition_is_exact_on_prefix(self, construction):
        T = construction.transaction(3)
        stable = construction.P(3)
        for sentence_index in (0, 1, 2):
            precondition = T.weakest_precondition(sentence_index, stable)
            phi = construction.sentences[sentence_index]
            for i in range(50):
                g = construction.graphs[i]
                assert evaluate(precondition, g) == evaluate(phi, T.apply(g)), (sentence_index, i)

    def test_describe_graph_exactly(self):
        g = Database.graph([(1, 2), (2, 2)])
        description = describe_graph_exactly(g)
        assert evaluate(description, g)
        assert not evaluate(description, Database.graph([(1, 2)]))
        assert not evaluate(description, Database.graph([(1, 2), (2, 2), (2, 1)]))
        empty_description = describe_graph_exactly(Database.empty())
        assert evaluate(empty_description, Database.empty())
        assert not evaluate(empty_description, g)

    def test_sentence_enumeration_distinct(self):
        enumeration = SentenceEnumeration()
        assert len(enumeration) >= 16
        vector = enumeration.truth_vector(chain(3), 10)
        assert len(vector) == 10
