"""Tests for the Preserve problem, the Proposition 1 reduction, guarded
transactions and the integrity-maintenance engine."""

import pytest

from repro.db import Database, GRAPH_SCHEMA, Store, chain, cycle
from repro.logic import evaluate, parse
from repro.logic.builder import has_some_edge, psi_cc
from repro.core import (
    ChainTransaction,
    ChainWpcCalculator,
    Constraint,
    IntegrityMaintainer,
    PrerelationSpec,
    PreservationReduction,
    RuntimeCheckPolicy,
    SemanticPrecondition,
    StaticPreconditionPolicy,
    UncheckedPolicy,
    WpcCalculator,
    find_preservation_counterexample,
    make_safe,
    preserves_bounded,
    preserves_on,
    preserves_randomized,
)
from repro.transactions import (
    DeleteWhere,
    FOProgram,
    FunctionTransaction,
    InsertWhere,
    complete_graph_transaction,
    diagonal_transaction,
    tc_transaction,
)


class TestPreserve:
    def test_identity_preserves_everything(self, graphs_2):
        from repro.transactions import IdentityTransaction

        assert preserves_on(IdentityTransaction(), parse("exists x . E(x, x)"), graphs_2)

    def test_tc_preserves_loop_existence_but_not_loop_freeness(self, graphs_3):
        sample = graphs_3[:200]
        assert preserves_on(tc_transaction(), parse("exists x . E(x, x)"), sample)
        witness = find_preservation_counterexample(
            tc_transaction(), parse("forall x . ~E(x, x)"), [cycle(3)]
        )
        assert witness is not None

    def test_preserves_bounded(self):
        ok, witness = preserves_bounded(
            diagonal_transaction(), parse("exists x . E(x, x)"), max_nodes=2
        )
        # the diagonal always has loops once the input is non-empty, and an
        # input satisfying the constraint is non-empty
        assert ok and witness is None
        ok, witness = preserves_bounded(
            complete_graph_transaction(), parse("exists x . E(x, x)"), max_nodes=2
        )
        assert not ok and witness is not None

    def test_preserves_bounded_up_to_isomorphism(self):
        ok, _ = preserves_bounded(
            diagonal_transaction(), parse("exists x . E(x, x)"),
            max_nodes=3, up_to_isomorphism=True,
        )
        assert ok

    def test_preserves_randomized(self):
        ok, witness = preserves_randomized(
            tc_transaction(), parse("forall x . ~E(x, x)"), samples=60, max_nodes=6, seed=3
        )
        assert not ok and witness is not None

    def test_guarded_transaction_always_preserves(self, graphs_3):
        constraint = parse("forall x . ~E(x, x)")
        spec = PrerelationSpec.from_fo_program(
            FOProgram([InsertWhere("E", ("x", "y"), parse("E(y, x)"))], name="sym")
        )
        precondition = WpcCalculator(spec).wpc(constraint)
        safe = make_safe(spec.as_transaction(), precondition, on_abort="identity")
        assert preserves_on(safe, constraint, graphs_3[:200])


class TestProposition1Reduction:
    """The executable content of the undecidability proof (Fact A)."""

    @pytest.mark.parametrize(
        "beta, finitely_valid_on_small",
        [
            (parse("forall x y . E(x, y) -> E(x, y)"), True),     # a tautology
            (parse("exists x . E(x, x)"), False),                  # fails on loop-free graphs
            (parse("forall x y . E(x, y) -> E(y, x)"), False),     # symmetry is not valid
        ],
    )
    def test_reduction_agrees_with_validity(self, beta, finitely_valid_on_small, graphs_3):
        reduction = PreservationReduction(beta)
        family = graphs_3[:256]
        assert reduction.beta_valid_on(family) == finitely_valid_on_small
        assert reduction.reduction_agrees_on(family)

    def test_reduction_instances_shape(self):
        reduction = PreservationReduction(parse("exists x . E(x, x)"))
        instances = reduction.instances()
        assert len(instances) == 2
        names = {t.name for t, _ in instances}
        assert names == {"T1-diagonal", "T2-complete"}

    def test_reduction_requires_sentence(self):
        with pytest.raises(ValueError):
            PreservationReduction(parse("E(x, y)"))


def account_schema_store(initial_edges):
    return Store(GRAPH_SCHEMA, Database.graph(initial_edges))


class TestMaintenancePolicies:
    def setup_method(self):
        self.constraint_formula = parse("forall x . ~E(x, x)")
        # transaction: symmetrise the graph (never creates loops)
        self.safe_program = FOProgram(
            [InsertWhere("E", ("x", "y"), parse("E(y, x)"))], name="symmetrise"
        )
        # transaction: add a loop on node 0 when present (violates the constraint)
        self.unsafe_transaction = FunctionTransaction(
            lambda db: db.insert("E", (0, 0)) if 0 in db.active_domain else db,
            name="add-loop",
        )
        spec = PrerelationSpec.from_fo_program(self.safe_program)
        wpc = WpcCalculator(spec).wpc(self.constraint_formula)
        self.constraint = Constraint(
            "loop-free",
            self.constraint_formula,
            preconditions={
                self.safe_program.name: wpc,
                self.unsafe_transaction.name: SemanticPrecondition(
                    self.unsafe_transaction, self.constraint_formula
                ),
            },
        )

    def workload(self):
        return [self.safe_program, self.unsafe_transaction, self.safe_program]

    def test_runtime_policy_rolls_back_violations(self):
        store = account_schema_store([(0, 1), (1, 2)])
        maintainer = IntegrityMaintainer(store, [self.constraint], RuntimeCheckPolicy())
        report = maintainer.run(self.workload())
        assert report.committed == 2
        assert report.rolled_back == 1
        assert maintainer.invariant_holds()

    def test_static_policy_rejects_without_rollback(self):
        store = account_schema_store([(0, 1), (1, 2)])
        maintainer = IntegrityMaintainer(store, [self.constraint], StaticPreconditionPolicy())
        report = maintainer.run(self.workload())
        assert report.committed == 2
        assert report.rejected_statically == 1
        assert report.rolled_back == 0
        assert maintainer.invariant_holds()

    def test_unchecked_policy_lets_violations_through(self):
        store = account_schema_store([(0, 1), (1, 2)])
        maintainer = IntegrityMaintainer(store, [self.constraint], UncheckedPolicy())
        report = maintainer.run(self.workload())
        assert report.committed == 3
        assert report.violations_missed >= 1
        assert not maintainer.invariant_holds()

    def test_policies_agree_on_final_state_modulo_violations(self):
        runtime_store = account_schema_store([(0, 1), (1, 2)])
        static_store = account_schema_store([(0, 1), (1, 2)])
        IntegrityMaintainer(runtime_store, [self.constraint], RuntimeCheckPolicy()).run(self.workload())
        IntegrityMaintainer(static_store, [self.constraint], StaticPreconditionPolicy()).run(self.workload())
        assert runtime_store.snapshot() == static_store.snapshot()

    def test_report_summary_readable(self):
        store = account_schema_store([(0, 1)])
        maintainer = IntegrityMaintainer(store, [self.constraint], RuntimeCheckPolicy())
        report = maintainer.run([self.safe_program])
        text = report.summary()
        assert "runtime-check" in text and "committed" in text

    def test_static_policy_falls_back_to_runtime_without_precondition(self):
        store = account_schema_store([(0, 1)])
        bare_constraint = Constraint("loop-free", self.constraint_formula)
        maintainer = IntegrityMaintainer(store, [bare_constraint], StaticPreconditionPolicy())
        report = maintainer.run([self.unsafe_transaction])
        assert report.rolled_back == 1
        assert report.precondition_evaluations == 0
