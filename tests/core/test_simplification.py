"""Tests for precondition simplification under an invariant (concluding remarks)."""

import pytest

from repro.db import all_graphs, chain, cycle
from repro.logic import evaluate, parse, TOP
from repro.core import (
    BoundedSimplifier,
    PrerelationSpec,
    SimplificationResult,
    WpcCalculator,
    equivalent_under,
    make_safe,
    preserves_on,
)
from repro.transactions import DeleteWhere, FOProgram, InsertWhere


class TestEquivalentUnder:
    def test_unconditional_equivalence(self, graphs_2):
        assert equivalent_under(parse("true"), parse("E(0, 1)"), parse("E(0, 1)"), graphs_2)

    def test_equivalence_only_under_invariant(self, graphs_2):
        # under "the graph is loop-free", the two sentences agree
        invariant = parse("forall x . ~E(x, x)")
        left = parse("exists x y . E(x, y)")
        right = parse("exists x y . E(x, y) & x != y")
        assert equivalent_under(invariant, left, right, graphs_2)
        assert not equivalent_under(parse("true"), left, right, graphs_2)


class TestBoundedSimplifier:
    def test_drop_loops_precondition_simplifies_to_true(self, graphs_3):
        # deleting all loops establishes loop-freeness unconditionally, so
        # under the invariant the guard collapses to `true`
        program = FOProgram([DeleteWhere("E", ("x", "y"), parse("x = y"))], name="drop-loops")
        constraint = parse("forall x . ~E(x, x)")
        spec = PrerelationSpec.from_fo_program(program)
        precondition = WpcCalculator(spec).wpc(constraint)
        simplifier = BoundedSimplifier(databases=graphs_3[:256])
        result = simplifier.simplify(constraint, precondition)
        assert result.verified
        assert result.simplified == TOP
        assert result.size_reduction > 0.9

    def test_simplified_guard_still_preserves_constraint(self, graphs_3):
        program = FOProgram(
            [InsertWhere("E", ("x", "y"), parse("E(y, x)"))], name="symmetrise"
        )
        constraint = parse("forall x . ~E(x, x)")
        spec = PrerelationSpec.from_fo_program(program)
        precondition = WpcCalculator(spec).wpc(constraint)
        sample = graphs_3[:256]
        result = BoundedSimplifier(databases=sample).simplify(constraint, precondition)
        assert result.verified
        guarded = make_safe(spec.as_transaction(), result.simplified, on_abort="identity")
        assert preserves_on(guarded, constraint, sample)

    def test_never_larger_than_original(self, graphs_2):
        constraint = parse("exists x y . E(x, y)")
        precondition = parse("(exists x y . E(x, y)) & (exists x y . E(x, y) | E(y, x))")
        result = BoundedSimplifier(databases=graphs_2).simplify(constraint, precondition)
        assert result.simplified.size() <= precondition.size()
        assert result.verified

    def test_result_repr_and_reduction(self, graphs_2):
        result = BoundedSimplifier(databases=graphs_2).simplify(parse("true"), parse("true"))
        assert isinstance(result, SimplificationResult)
        assert result.size_reduction == 0.0
        assert "verified=True" in repr(result)

    def test_default_family_is_bounded_exhaustive(self):
        simplifier = BoundedSimplifier(max_nodes=2)
        assert len(simplifier.databases) == 16
