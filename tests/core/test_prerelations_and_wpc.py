"""Tests for prerelations and the Theorem 8 weakest-precondition algorithm."""

import pytest

from repro.db import Database, all_graphs, chain, cycle, diagonal_graph
from repro.logic import (
    AtomDefinition,
    Atom,
    Const,
    CountingExists,
    Func,
    Var,
    arithmetic_signature,
    evaluate,
    parse,
    successor_signature,
)
from repro.logic.builder import E
from repro.core import (
    PrerelationSpec,
    PrerelationTransaction,
    SemanticPrecondition,
    WpcCalculator,
    WpcError,
    check_wpc,
    find_wpc_counterexample,
    gamma_closure,
    weakest_precondition,
)
from repro.transactions import DeleteWhere, FOProgram, InsertTuple, InsertWhere, tc_transaction


CONSTRAINTS = [
    parse("forall x . ~E(x, x)"),
    parse("exists x y . E(x, y)"),
    parse("forall x y . E(x, y) -> E(y, x)"),
    parse("forall x . (exists y . E(x, y)) -> exists z . E(z, x)"),
    parse("exists x . forall y . ~E(y, x)"),
    parse("E(0, 1) | E(1, 0)"),
]


def symmetric_difference_spec():
    """E'(x, y) := E(x, y) xor E(y, x) — a non-trivial FO-definable transaction."""
    body = parse("(E(x, y) & ~E(y, x)) | (E(y, x) & ~E(x, y))")
    return PrerelationSpec.for_graph(body, name="xor-reverse")


class TestGammaClosure:
    def test_single_variable_gives_active_domain(self):
        db = chain(3)
        assert gamma_closure((Var("u"),), db) == db.active_domain

    def test_constants_added(self):
        db = chain(2)
        closure = gamma_closure((Var("u"), Const(99)), db)
        assert closure == db.active_domain | {99}

    def test_function_terms(self):
        db = Database.graph([(1, 2)])
        closure = gamma_closure(
            (Var("u"), Func("succ", Var("u"))), db, successor_signature()
        )
        assert closure == {1, 2, 3}

    def test_constant_on_empty_database(self):
        assert gamma_closure((Const(5),), Database.empty()) == {5}


class TestPrerelationSpec:
    def test_identity_spec(self, graphs_2):
        identity = PrerelationSpec.identity().as_transaction()
        for g in graphs_2:
            assert identity.apply(g) == g

    def test_validation_missing_relation(self):
        from repro.db.schema import Schema

        schema = Schema.of(E=2, P=1)
        with pytest.raises(Exception):
            PrerelationSpec(schema, (Var("u"),), {
                "E": AtomDefinition(("x", "y"), E("x", "y")),
            })

    def test_validation_arity_mismatch(self):
        with pytest.raises(Exception):
            PrerelationSpec.for_graph(parse("E(x, x)"), variables=("x",))

    def test_validation_unknown_interpreted_symbol(self):
        with pytest.raises(Exception):
            PrerelationSpec.for_graph(
                parse("even(x) & E(x, y)", predicates=["even"]),
            )

    def test_empty_gamma_rejected(self):
        with pytest.raises(Exception):
            PrerelationSpec.for_graph(E("x", "y"), gamma=())

    def test_tuple_will_be_in_matches_execution(self, graphs_2):
        spec = symmetric_difference_spec()
        transaction = spec.as_transaction()
        for g in graphs_2:
            post = transaction.apply(g)
            domain = sorted(spec.gamma_set(g), key=repr)
            for a in domain:
                for b in domain:
                    assert spec.tuple_will_be_in(g, "E", (a, b)) == ((a, b) in post.edges)

    def test_tuple_outside_gamma_is_never_in(self):
        spec = symmetric_difference_spec()
        assert not spec.tuple_will_be_in(chain(2), "E", (50, 51))

    def test_from_fo_program_roundtrip(self, graphs_2):
        program = FOProgram([InsertWhere("E", ("x", "y"), E("y", "x"))], name="sym")
        spec = PrerelationSpec.from_fo_program(program)
        transaction = spec.as_transaction()
        for g in graphs_2:
            assert transaction.apply(g) == program.apply(g)


class TestWpcCalculatorCorrectness:
    """The executable content of Theorem 8: D |= wpc(T, a)  iff  T(D) |= a."""

    @pytest.mark.parametrize("constraint", CONSTRAINTS, ids=[str(c)[:30] for c in CONSTRAINTS])
    def test_fo_definable_transaction(self, constraint, graphs_3):
        spec = symmetric_difference_spec()
        precondition = WpcCalculator(spec).wpc(constraint)
        witness = find_wpc_counterexample(
            spec.as_transaction(), constraint, precondition, graphs_3[:256]
        )
        assert witness is None, witness

    @pytest.mark.parametrize("constraint", CONSTRAINTS[:4], ids=[str(c)[:30] for c in CONSTRAINTS[:4]])
    def test_domain_extending_transaction(self, constraint, graphs_2):
        program = FOProgram([
            InsertTuple("E", 100, 101),
            InsertWhere("E", ("x", "y"), parse("E(y, x) & x != y")),
        ], name="insert-and-symmetrise")
        spec = PrerelationSpec.from_fo_program(program)
        precondition = WpcCalculator(spec).wpc(constraint)
        witness = find_wpc_counterexample(
            spec.as_transaction(), constraint, precondition, graphs_2
        )
        assert witness is None, witness

    def test_constraint_with_constants(self, graphs_2):
        spec = symmetric_difference_spec()
        constraint = parse("E(0, 1) & ~E(1, 0)")
        precondition = WpcCalculator(spec).wpc(constraint)
        assert check_wpc(spec.as_transaction(), constraint, precondition, graphs_2)

    def test_counting_quantifier_supported_without_domain_extension(self, graphs_3):
        spec = symmetric_difference_spec()
        constraint = CountingExists("x", 2, Atom("E", "x", "x"))
        precondition = WpcCalculator(spec).wpc(constraint)
        assert check_wpc(spec.as_transaction(), constraint, precondition, graphs_3[:128])

    def test_counting_quantifier_rejected_with_domain_extension(self):
        program = FOProgram([InsertTuple("E", 9, 9)])
        spec = PrerelationSpec.from_fo_program(program)
        with pytest.raises(WpcError):
            WpcCalculator(spec).wpc(CountingExists("x", 2, Atom("E", "x", "x")))

    def test_interpreted_signature_constraint(self, graphs_2):
        # the constraint uses an Omega' predicate the transaction knows nothing about
        spec = symmetric_difference_spec()
        constraint = parse("forall x . E(x, x) -> even(x)", predicates=["even"])
        precondition = WpcCalculator(spec).wpc(constraint)
        witness = find_wpc_counterexample(
            spec.as_transaction(), constraint, precondition, graphs_2,
            signature=arithmetic_signature(),
        )
        assert witness is None

    def test_guarded_transaction_preserves_constraint(self, graphs_3):
        spec = symmetric_difference_spec()
        constraint = parse("forall x . ~E(x, x)")
        guarded = WpcCalculator(spec).guarded_transaction(constraint)
        from repro.transactions import TransactionAbortedSignal

        for g in graphs_3[:128]:
            if not evaluate(constraint, g):
                continue
            try:
                result = guarded.apply(g)
            except TransactionAbortedSignal:
                continue
            assert evaluate(constraint, result)


class TestWpcFrontEnds:
    def test_weakest_precondition_accepts_program(self, graphs_2):
        program = FOProgram([DeleteWhere("E", ("x", "y"), parse("x = y"))], name="drop-loops")
        constraint = parse("forall x . ~E(x, x)")
        precondition = weakest_precondition(program, constraint)
        # dropping loops always establishes loop-freeness
        for g in graphs_2:
            assert evaluate(precondition, g)

    def test_weakest_precondition_rejects_arbitrary_transaction(self):
        with pytest.raises(WpcError):
            weakest_precondition(tc_transaction(), parse("forall x y . E(x, y)"))

    def test_wpc_requires_sentence(self):
        spec = PrerelationSpec.identity()
        with pytest.raises(WpcError):
            WpcCalculator(spec).wpc(parse("E(x, y)"))

    def test_wpc_rejects_unknown_relation(self):
        spec = PrerelationSpec.identity()
        with pytest.raises(WpcError):
            WpcCalculator(spec).wpc(parse("forall x . R(x)"))

    def test_wpc_rejects_semantic_sentences(self):
        from repro.logic import ParitySentence

        spec = PrerelationSpec.identity()
        with pytest.raises(WpcError):
            WpcCalculator(spec).wpc(ParitySentence(parse("E(x, x)")))

    def test_semantic_precondition_baseline(self, graphs_2):
        constraint = parse("forall x y . E(x, y)")
        oracle = SemanticPrecondition(tc_transaction(), constraint)
        for g in graphs_2:
            assert oracle.holds(g) == evaluate(constraint, tc_transaction().apply(g))

    def test_identity_wpc_is_equivalent_to_constraint(self, graphs_2):
        spec = PrerelationSpec.identity()
        constraint = parse("exists x . E(x, x)")
        precondition = WpcCalculator(spec).wpc(constraint)
        for g in graphs_2:
            assert evaluate(precondition, g) == evaluate(constraint, g)
