"""Shared fixtures for the test suite.

The fixtures precompute the small exhaustive graph families that many tests
sweep over, so that the (exponential) enumerations are done once per session.
"""

from __future__ import annotations

import pytest

from repro.db import (
    all_graphs,
    all_graphs_up_to_iso,
    chain,
    chain_and_cycles,
    cycle,
    diagonal_graph,
    linear_order,
    random_graph,
    two_branch_tree,
)


@pytest.fixture(scope="session")
def graphs_2():
    """All directed graphs (with loops) over subsets of {0, 1}: 16 graphs."""
    return list(all_graphs(2))


@pytest.fixture(scope="session")
def graphs_3():
    """All directed graphs (with loops) over subsets of {0, 1, 2}: 512 graphs."""
    return list(all_graphs(3))


@pytest.fixture(scope="session")
def graphs_3_loopfree():
    """All loop-free directed graphs over subsets of {0, 1, 2}: 64 graphs."""
    return list(all_graphs(3, loops=False))


@pytest.fixture(scope="session")
def graphs_iso_3():
    """One representative per isomorphism class of graphs on at most 3 nodes."""
    return all_graphs_up_to_iso(3)


@pytest.fixture(scope="session")
def assorted_graphs():
    """A mixed bag of named graph families used by integration-style tests."""
    return [
        chain(2),
        chain(5),
        cycle(3),
        cycle(6),
        chain_and_cycles(3, [4]),
        chain_and_cycles(4, [2, 3]),
        two_branch_tree(2, 2),
        two_branch_tree(3, 5),
        diagonal_graph([1, 2, 3]),
        linear_order(4),
        random_graph(5, 0.3, seed=7),
        random_graph(6, 0.2, seed=11),
    ]
