"""Shared fixtures and reproducibility plumbing for the test suite.

Three jobs live here:

* session fixtures precomputing the small exhaustive graph families many
  tests sweep over (the exponential enumerations run once per session);
* hypothesis profiles threading ``REPRO_SEED`` into every generator-driven
  test (see ``tests/strategies.py``, the shared generator library) — set
  ``HYPOTHESIS_PROFILE=ci`` for the larger CI sweep, ``dev`` for a quick
  local pass;
* failure reporting: every failing test gets a ``repro configuration``
  section naming the active seed, backend, shard count and delta mode, so a
  flake from one leg of the backend matrix can be replayed exactly.
"""

from __future__ import annotations

import os
import sys

import pytest
from hypothesis import HealthCheck, settings

# the shared generator library lives next to this conftest; make it
# importable as ``strategies`` from every test package
sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from strategies import config_text  # noqa: E402

_COMMON = dict(
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
    print_blob=True,
)
settings.register_profile("default", max_examples=60, **_COMMON)
settings.register_profile("dev", max_examples=15, **_COMMON)
settings.register_profile("ci", max_examples=120, **_COMMON)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "default"))


def pytest_report_header(config):
    return config_text()


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_makereport(item, call):
    outcome = yield
    report = outcome.get_result()
    if report.when == "call" and report.failed:
        report.sections.append(("repro configuration", config_text()))


from repro.db import (  # noqa: E402
    all_graphs,
    all_graphs_up_to_iso,
    chain,
    chain_and_cycles,
    cycle,
    diagonal_graph,
    linear_order,
    random_graph,
    two_branch_tree,
)


@pytest.fixture(scope="session")
def graphs_2():
    """All directed graphs (with loops) over subsets of {0, 1}: 16 graphs."""
    return list(all_graphs(2))


@pytest.fixture(scope="session")
def graphs_3():
    """All directed graphs (with loops) over subsets of {0, 1, 2}: 512 graphs."""
    return list(all_graphs(3))


@pytest.fixture(scope="session")
def graphs_3_loopfree():
    """All loop-free directed graphs over subsets of {0, 1, 2}: 64 graphs."""
    return list(all_graphs(3, loops=False))


@pytest.fixture(scope="session")
def graphs_iso_3():
    """One representative per isomorphism class of graphs on at most 3 nodes."""
    return all_graphs_up_to_iso(3)


@pytest.fixture(scope="session")
def assorted_graphs():
    """A mixed bag of named graph families used by integration-style tests."""
    return [
        chain(2),
        chain(5),
        cycle(3),
        cycle(6),
        chain_and_cycles(3, [4]),
        chain_and_cycles(4, [2, 3]),
        two_branch_tree(2, 2),
        two_branch_tree(3, 5),
        diagonal_graph([1, 2, 3]),
        linear_order(4),
        random_graph(5, 0.3, seed=7),
        random_graph(6, 0.2, seed=11),
    ]
