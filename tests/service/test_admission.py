"""WPC-verified admission: classification, verdict caching, guard handling."""

import pytest

from repro.core import Constraint, classify_preservation
from repro.logic import parse
from repro.logic.syntax import TOP, And, Atom, Eq, Not
from repro.logic.terms import Const, Var
from repro.service import AdmissionController, TransactionTemplate
from repro.service.workloads import (
    NO_LOOPS,
    NO_TRIANGLES,
    standard_constraints,
    standard_templates,
    _insert_edge_program,
    _link_forward_program,
    _unlink_program,
)
from repro.transactions import FOProgram, InsertTuple


class TestClassifyPreservation:
    def test_forward_insert_is_static_for_no_loops(self):
        verdict = classify_preservation(_link_forward_program(0, 1), NO_LOOPS)
        assert verdict.mode == "static"

    def test_loop_insert_is_guarded_for_no_loops(self):
        verdict = classify_preservation(_insert_edge_program(2, 2), NO_LOOPS)
        assert verdict.mode == "guarded"
        assert verdict.guard is not None

    def test_delete_is_static_for_universal_constraints(self):
        verdict = classify_preservation(_unlink_program(0, 1), NO_TRIANGLES)
        assert verdict.mode == "static"

    def test_semantic_constraint_falls_back_to_runtime(self):
        class Semantic:
            def holds(self, db):
                return True

        verdict = classify_preservation(_link_forward_program(0, 1), Semantic())
        assert verdict.mode == "runtime"

    def test_opaque_transaction_falls_back_to_runtime(self):
        from repro.transactions.base import FunctionTransaction

        opaque = FunctionTransaction(lambda db: db, name="opaque")
        verdict = classify_preservation(opaque, NO_LOOPS)
        assert verdict.mode == "runtime"


class TestController:
    def test_register_classifies_against_every_constraint(self):
        controller = AdmissionController(standard_constraints())
        link, unlink, add_edge = standard_templates()
        verdicts = controller.register(link)
        assert verdicts["no-loops"].mode == "static"
        assert verdicts["no-triangles"].mode == "guarded"
        verdicts = controller.register(unlink)
        assert {v.mode for v in verdicts.values()} == {"static"}
        verdicts = controller.register(add_edge)
        assert verdicts["no-loops"].mode == "guarded"
        assert verdicts["no-triangles"].mode == "guarded"

    def test_worst_sample_wins(self):
        # one sample is a safe forward edge, one is a loop: the template as a
        # whole must be treated at the guarded level
        controller = AdmissionController([Constraint("no-loops", NO_LOOPS)])
        template = TransactionTemplate(
            "sometimes-loopy", _insert_edge_program, samples=((0, 1), (2, 2))
        )
        verdicts = controller.register(template)
        assert verdicts["no-loops"].mode == "guarded"

    def test_register_is_idempotent_and_cached(self):
        controller = AdmissionController(standard_constraints())
        template = standard_templates()[0]
        first = controller.register(template)
        classified = controller.classified
        second = controller.register(template)
        assert controller.classified == classified  # no re-classification
        assert {k: v.mode for k, v in first.items()} == {
            k: v.mode for k, v in second.items()
        }

    def test_verdicts_for_unknown_template_is_none(self):
        controller = AdmissionController(standard_constraints())
        assert controller.verdicts_for("nope") is None
        assert controller.verdicts_for(None) is None

    def test_register_fills_constraint_precondition_table(self):
        constraints = standard_constraints()
        controller = AdmissionController(constraints)
        controller.register(standard_templates()[0])
        by_name = {c.name: c for c in constraints}
        assert "link-forward" in by_name["no-loops"].preconditions

    def test_verified_parametric_guard_is_used(self):
        controller = AdmissionController(standard_constraints())
        add_edge = standard_templates()[2]
        controller.register(add_edge)
        constraint = controller.constraints[0]  # no-loops
        guard = controller.guard_for("add-edge", constraint, (3, 3))
        # the hand guard `a != b` survives verification and is instantiated
        assert guard == Not(Eq(Const(3), Const(3)))
        # and memoised per parameter tuple
        hits = controller.guard_cache_hits
        controller.guard_for("add-edge", constraint, (3, 3))
        assert controller.guard_cache_hits == hits + 1

    def test_wrong_parametric_guard_is_dropped(self):
        constraints = [Constraint("no-loops", NO_LOOPS)]
        controller = AdmissionController(constraints)
        bogus = TransactionTemplate(
            "bogus-add-edge",
            _insert_edge_program,
            samples=((2, 2),),
            guards={"no-loops": lambda a, b: TOP},  # claims loops are fine
        )
        controller.register(bogus)
        assert "no-loops" not in bogus.guards  # rejected by the family check
        guard = controller.guard_for("bogus-add-edge", constraints[0], (2, 2))
        assert guard != TOP  # fell back to the real wpc

    def test_guard_for_unregistered_template_raises(self):
        from repro.service import ServiceError

        controller = AdmissionController(standard_constraints())
        with pytest.raises(ServiceError):
            controller.guard_for("ghost", controller.constraints[0], ())
