"""MVCC snapshots: handles, read tracking, validation, the version window."""

import pytest

from repro.db import Database, Delta, GRAPH_SCHEMA, Store
from repro.logic import parse
from repro.service import SnapshotManager, SnapshotTransaction, validate
from repro.transactions import FOProgram, InsertTuple

NO_LOOPS = parse("forall x . ~E(x, x)")


@pytest.fixture
def base():
    return Database.graph([(1, 2), (2, 3)])


def handle_on(db, version=0):
    return SnapshotTransaction(db, version)


class TestHandle:
    def test_read_your_own_writes(self, base):
        txn = handle_on(base)
        assert txn.insert("E", (3, 4))
        assert txn.delete("E", (1, 2))
        assert txn.contains("E", (3, 4))
        assert not txn.contains("E", (1, 2))
        assert txn.scan("E") == frozenset({(2, 3), (3, 4)})
        # the pinned snapshot itself is untouched
        assert base == Database.graph([(1, 2), (2, 3)])

    def test_delta_folds_cancelling_writes(self, base):
        txn = handle_on(base)
        txn.insert("E", (3, 4))
        txn.delete("E", (3, 4))
        txn.delete("E", (1, 2))
        txn.insert("E", (1, 2))
        assert txn.delta().is_empty()

    def test_ineffective_writes_not_in_delta(self, base):
        txn = handle_on(base)
        assert not txn.insert("E", (1, 2))      # already present
        assert not txn.delete("E", (9, 9))      # never present
        assert txn.delta().is_empty()

    def test_reads_are_tracked(self, base):
        txn = handle_on(base)
        txn.contains("E", (1, 2))
        txn.scan("E")
        assert txn.evaluate(NO_LOOPS)
        assert (1, 2) in txn.reads.rows["E"]
        assert "E" in txn.reads.scanned
        assert list(txn.reads.predicates.values()) == [True]

    def test_write_effectiveness_probe_is_a_read(self, base):
        txn = handle_on(base)
        txn.insert("E", (1, 2))   # no-op, but the probe must be recorded
        assert (1, 2) in txn.reads.rows["E"]

    def test_evaluate_sees_own_writes(self, base):
        txn = handle_on(base)
        assert txn.evaluate(NO_LOOPS)
        txn.insert("E", (5, 5))
        assert not txn.evaluate(NO_LOOPS)

    def test_apply_transaction_is_opaque(self, base):
        txn = handle_on(base)
        txn.apply(FOProgram([InsertTuple("E", 7, 8)], name="t"))
        assert txn.reads.opaque
        assert txn.delta() == Delta.insertion("E", (7, 8))


class TestValidate:
    def test_empty_foreign_never_conflicts(self, base):
        txn = handle_on(base)
        txn.scan("E")
        txn.insert("E", (5, 6))
        assert validate(txn.reads, txn.delta(), Delta(), base) is None

    def test_disjoint_writes_commute(self, base):
        txn = handle_on(base)
        txn.insert("E", (5, 6))
        foreign = Delta.insertion("E", (7, 8))
        assert validate(txn.reads, txn.delta(), foreign, base) is None

    def test_write_write_overlap_conflicts(self, base):
        txn = handle_on(base)
        txn.insert("E", (5, 6))
        foreign = Delta.insertion("E", (5, 6))
        reason = validate(txn.reads, txn.delta(), foreign, base)
        assert reason is not None

    def test_scan_conflicts_with_any_touch(self, base):
        txn = handle_on(base)
        txn.scan("E")
        foreign = Delta.insertion("E", (7, 8))
        assert validate(txn.reads, txn.delta(), foreign, base) is not None

    def test_row_probe_conflicts_only_on_that_row(self, base):
        txn = handle_on(base)
        txn.contains("E", (1, 2))
        assert validate(txn.reads, txn.delta(), Delta.deletion("E", (1, 2)), base)
        assert validate(txn.reads, txn.delta(), Delta.insertion("E", (8, 9)), base) is None

    def test_predicate_unchanged_passes(self, base):
        txn = handle_on(base)
        assert txn.evaluate(NO_LOOPS)
        foreign = Delta.insertion("E", (7, 8))  # no loop: predicate unchanged
        assert validate(txn.reads, txn.delta(), foreign, base) is None

    def test_predicate_flip_conflicts(self, base):
        txn = handle_on(base)
        assert txn.evaluate(NO_LOOPS)
        foreign = Delta.insertion("E", (7, 7))  # loop: predicate flips
        reason = validate(txn.reads, txn.delta(), foreign, base)
        assert reason is not None and "predicate" in reason

    def test_predicate_checked_with_own_writes_at_read_time(self, base):
        txn = handle_on(base)
        txn.insert("E", (4, 4))            # own loop first
        assert not txn.evaluate(NO_LOOPS)  # observed False through own write
        foreign = Delta.insertion("E", (7, 8))
        # foreign delta does not change the observed (False) value
        assert validate(txn.reads, txn.delta(), foreign, base) is None

    def test_opaque_reads_conflict_with_anything(self, base):
        txn = handle_on(base)
        txn.apply(FOProgram([InsertTuple("E", 7, 8)], name="t"))
        foreign = Delta.insertion("E", (0, 9))
        assert validate(txn.reads, txn.delta(), foreign, base) is not None


class TestSnapshotManager:
    def test_pin_and_foreign_delta(self, base):
        store = Store(GRAPH_SCHEMA, base)
        manager = SnapshotManager(store)
        txn = manager.begin()
        assert txn.version == store.version
        assert manager.foreign_delta(txn.version) == Delta()
        # a commit recorded through the manager becomes foreign to the pin
        delta = Delta.insertion("E", (5, 6))
        store.begin(); store.apply_delta(delta); store.commit_unchecked()
        manager.record(store.version, delta)
        assert manager.foreign_delta(txn.version) == delta

    def test_foreign_deltas_compose(self, base):
        store = Store(GRAPH_SCHEMA, base)
        manager = SnapshotManager(store)
        txn = manager.begin()
        for edge in [(5, 6), (6, 7)]:
            delta = Delta.insertion("E", edge)
            store.begin(); store.apply_delta(delta); store.commit_unchecked()
            manager.record(store.version, delta)
        assert manager.foreign_delta(txn.version) == Delta(
            inserted={"E": [(5, 6), (6, 7)]}
        )

    def test_window_eviction_reports_unknown(self, base):
        store = Store(GRAPH_SCHEMA, base)
        manager = SnapshotManager(store, history_limit=2)
        txn = manager.begin()
        for edge in [(5, 6), (6, 7), (7, 8)]:
            delta = Delta.insertion("E", edge)
            store.begin(); store.apply_delta(delta); store.commit_unchecked()
            manager.record(store.version, delta)
        assert manager.foreign_delta(txn.version) is None  # fell out of the window

    def test_unrecorded_commit_reports_unknown(self, base):
        store = Store(GRAPH_SCHEMA, base)
        manager = SnapshotManager(store)
        txn = manager.begin()
        store.begin(); store.insert("E", (5, 6)); store.commit_unchecked()
        # the store advanced but the manager never saw the delta
        assert manager.foreign_delta(txn.version) is None
