"""The transaction service: outcomes, group commit, retries, fail-fast."""

import threading

import pytest

from repro.db import Database, Delta, GRAPH_SCHEMA, Store
from repro.service import (
    ServiceError,
    TransactionService,
    build_service,
    forward_graph,
    standard_constraints,
)
from repro.service.workloads import NO_LOOPS
from repro.transactions import FOProgram, InsertTuple


@pytest.fixture
def service():
    return build_service(Database.graph([(1, 2), (2, 3)]))


class TestOutcomes:
    def test_simple_commit(self, service):
        outcome = service.execute(
            lambda txn: txn.insert("E", (3, 4)),
            template="link-forward", params=(3, 4),
        )
        assert outcome.committed
        assert service.snapshot().relation("E") == frozenset({(1, 2), (2, 3), (3, 4)})

    def test_read_only_fast_path(self, service):
        before = service.store.version
        outcome = service.execute(lambda txn: txn.contains("E", (1, 2)))
        assert outcome.committed
        assert service.store.version == before  # nothing was applied
        assert service.stats.read_only_commits == 1

    def test_guarded_rejection_never_rolls_back(self, service):
        outcome = service.execute(
            lambda txn: txn.insert("E", (5, 5)),
            template="add-edge", params=(5, 5),
        )
        assert outcome.status == "rejected"
        assert "guard" in outcome.reason
        assert service.store.stats.aborted == 0  # nothing touched the store
        assert service.invariant_holds()

    def test_unregistered_shape_checked_at_runtime(self, service):
        outcome = service.execute(lambda txn: txn.insert("E", (6, 6)))
        assert outcome.status == "aborted"
        assert "constraint" in outcome.reason
        assert service.invariant_holds()
        assert service.stats.runtime_checks > 0

    def test_paper_transaction_commits(self, service):
        program = FOProgram([InsertTuple("E", 7, 8)], name="paper")
        outcome = service.execute(program)
        assert outcome.committed
        assert service.snapshot().relation("E") >= frozenset({(7, 8)})

    def test_transaction_named_like_guarded_template_runs_at_runtime(self, service):
        # "add-edge" is registered with *guarded* verdicts whose guards need
        # the instance parameters; a bare Transaction does not carry them, so
        # it must fall back to runtime verification — and still work
        legal = FOProgram([InsertTuple("E", 5, 6)], name="add-edge")
        outcome = service.execute(legal)
        assert outcome.committed, outcome
        illegal = FOProgram([InsertTuple("E", 6, 6)], name="add-edge")
        outcome = service.execute(illegal)
        assert outcome.status == "aborted"
        assert service.invariant_holds()

    def test_transaction_named_like_static_template_skips_checks(self, service):
        # "unlink" is static for every constraint: the bare Transaction can
        # adopt the verdicts safely (no parameters needed)
        runtime_before = service.stats.runtime_checks
        program = FOProgram([InsertTuple("E", 1, 2)], name="unlink")  # no-op insert
        service.execute(program)
        outcome = service.execute(
            FOProgram([InsertTuple("E", 11, 12)], name="unlink")
        )
        assert outcome.committed
        assert service.stats.runtime_checks == runtime_before

    def test_static_template_skips_all_checks(self, service):
        checks_before = (
            service.stats.guard_checks + service.stats.runtime_checks
        )
        outcome = service.execute(
            lambda txn: txn.delete("E", (1, 2)), template="unlink", params=(1, 2)
        )
        assert outcome.committed
        # "unlink" is static for both constraints: no guard, no runtime check
        assert (
            service.stats.guard_checks + service.stats.runtime_checks
            == checks_before
        )
        assert service.stats.static_skips >= 2


class TestConcurrency:
    def test_disjoint_writers_all_commit(self, service):
        outcomes = []
        lock = threading.Lock()

        def client(index):
            edge = (10 + index, 50 + index)
            outcome = service.execute(
                lambda txn: txn.insert("E", edge),
                template="link-forward", params=edge,
            )
            with lock:
                outcomes.append(outcome)

        threads = [threading.Thread(target=client, args=(i,)) for i in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert all(o.committed for o in outcomes)
        rows = service.snapshot().relation("E")
        assert all((10 + i, 50 + i) in rows for i in range(8))
        assert service.invariant_holds()

    def test_conflicting_writers_serialize(self, service):
        barrier = threading.Barrier(2)
        outcomes = []
        lock = threading.Lock()

        def client():
            def body(txn):
                # both probe-and-write the same row from the same snapshot
                present = txn.contains("E", (9, 9))
                if not present:
                    txn.insert("E", (4, 9))
                txn.insert("E", (3, 9))

            barrier.wait()
            outcome = service.execute(body)
            with lock:
                outcomes.append(outcome)

        threads = [threading.Thread(target=client) for _ in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert all(o.committed for o in outcomes)
        # one of the two must have retried or been batched behind the other
        assert service.invariant_holds()

    def test_group_commit_batches_one_apply_per_batch(self):
        import time

        service = build_service(forward_graph(50, 2, seed=4), commit_timeout=30.0)
        n = 12
        # hold the commit lock: no leader can emerge, so all n requests pile
        # up in the queue and must be committed by one drain — one store
        # transaction, one version bump, for n client commits
        service._commit_lock.acquire()
        try:
            threads = []
            for index in range(n):
                edge = (100 + index, 200 + index)
                thread = threading.Thread(
                    target=service.execute,
                    args=(lambda txn, e=edge: txn.insert("E", e),),
                    kwargs={"template": "link-forward", "params": edge},
                )
                thread.start()
                threads.append(thread)
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                with service._queue_lock:
                    if len(service._queue) == n:
                        break
                time.sleep(0.005)
            with service._queue_lock:
                assert len(service._queue) == n
        finally:
            # followers block on the condition (no polling), so an external
            # unwedge must notify exactly as the leader's release does
            with service._commit_cond:
                service._commit_lock.release()
                service._commit_cond.notify_all()
        for thread in threads:
            thread.join()
        stats = service.stats.as_dict()
        assert stats["committed"] == n
        assert stats["max_batch"] == n
        assert service.store.stats.committed == 1  # one apply_delta for the batch
        assert service.invariant_holds()

    def test_serial_fallback_guarantees_progress(self):
        # force conflicts: every transaction scans E and writes to it, so
        # optimistic validation can never accept two concurrent writers
        service = build_service(
            Database.graph([(1, 2)]), max_retries=1, commit_timeout=30.0
        )
        outcomes = []
        lock = threading.Lock()
        barrier = threading.Barrier(4)

        def client(index):
            def body(txn):
                txn.scan("E")
                txn.insert("E", (30 + index, 80 + index))

            barrier.wait()
            outcome = service.execute(body)
            with lock:
                outcomes.append(outcome)

        threads = [threading.Thread(target=client, args=(i,)) for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert all(o.committed for o in outcomes)
        rows = service.snapshot().relation("E")
        assert all((30 + i, 80 + i) in rows for i in range(4))


class TestFollowerWait:
    def test_followers_block_on_the_condition_not_a_poll(self):
        """Regression for the follower spin-wait: while a leader is inside
        the commit section, a follower must be parked in
        ``_commit_cond.wait`` (zero CPU, woken by the leader's notify), not
        re-polling ``done.wait(0.002)`` in a loop."""
        import time

        service = build_service(forward_graph(30, 2, seed=9), commit_timeout=30.0)
        stall = threading.Event()
        entered = threading.Event()
        original = service._process

        def slow_process(request, running, batch_delta):
            entered.set()
            assert stall.wait(timeout=10.0)
            return original(request, running, batch_delta)

        service._process = slow_process
        outcomes = []

        def client(edge):
            outcomes.append(
                service.execute(
                    lambda txn, e=edge: txn.insert("E", e),
                    template="link-forward", params=edge,
                )
            )

        leader = threading.Thread(target=client, args=((101, 102),))
        leader.start()
        assert entered.wait(timeout=10.0)   # leader is wedged inside _drain
        follower = threading.Thread(target=client, args=((103, 104),))
        follower.start()
        # the follower loses the election and must end up blocked on the
        # condition; with the old 2ms poll no waiter ever parks there
        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline:
            with service._commit_cond:
                waiters = len(service._commit_cond._waiters)
            if waiters >= 1:
                break
            time.sleep(0.005)
        assert waiters >= 1, "follower never blocked on the commit condition"
        stall.set()
        leader.join(timeout=10.0)
        follower.join(timeout=10.0)
        assert not leader.is_alive() and not follower.is_alive()
        assert [o.committed for o in outcomes] == [True, True]
        assert service.invariant_holds()
        service.close()

    def test_external_timeout_semantics_survive_the_blocking_wait(self):
        """The deadline still bounds a follower parked on the condition: a
        wedged pipeline surfaces as ServiceError at ~commit_timeout, not a
        hang (the _give_up path is unchanged)."""
        import time

        service = build_service(Database.graph([(1, 2)]), commit_timeout=0.3)
        service._commit_lock.acquire()
        started = time.monotonic()
        try:
            with pytest.raises(ServiceError, match="timed out"):
                service.execute(
                    lambda txn: txn.insert("E", (8, 9)),
                    template="link-forward", params=(8, 9),
                )
        finally:
            with service._commit_cond:
                service._commit_lock.release()
                service._commit_cond.notify_all()
        elapsed = time.monotonic() - started
        assert elapsed < 10.0   # woke at the deadline, not at lock release
        service.close()


def test_forward_graph_saturates_instead_of_hanging():
    # 4 accounts have only 6 distinct forward pairs; asking for 8 must
    # saturate, not spin forever
    db = forward_graph(4, 2)
    assert len(db.relation("E")) == 6


class TestCommitLog:
    def test_commit_order_replay_matches(self, service):
        initial = service.snapshot()
        edges = [(3, 4), (4, 5), (5, 6)]
        for index, edge in enumerate(edges):
            service.execute(
                lambda txn, e=edge: txn.insert("E", e),
                template="link-forward", params=edge, tag=index,
            )
        assert service.commit_log == [0, 1, 2]
        replay = initial
        for index in service.commit_log:
            replay = replay.apply_delta(Delta.insertion("E", edges[index]))
        assert replay == service.snapshot()

    def test_read_only_not_in_commit_log(self, service):
        service.execute(lambda txn: txn.contains("E", (1, 2)), tag="reader")
        assert service.commit_log == []


class TestFailFast:
    def test_failing_constraint_aborts_only_its_transaction(self):
        # a constraint whose evaluation *raises* must sink the offending
        # transaction (aborted, with the error in the reason), not the batch
        # or the service
        from repro.core import Constraint

        class Exploding:
            def holds(self, db):
                raise ValueError("boom")

        service = TransactionService(
            Store(GRAPH_SCHEMA, Database.graph([(1, 2)])),
            [Constraint("exploding", Exploding())],
            commit_timeout=10.0,
        )
        outcome = service.execute(lambda txn: txn.insert("E", (3, 4)))
        assert outcome.status == "aborted"
        assert "boom" in outcome.reason
        # the service remains fully usable afterwards
        follow_up = service.execute(lambda txn: txn.contains("E", (1, 2)))
        assert follow_up.committed

    def test_commit_timeout_raises(self):
        service = build_service(Database.graph([(1, 2)]), commit_timeout=0.2)
        # wedge the pipeline: hold the commit lock so no leader can emerge
        service._commit_lock.acquire()
        try:
            with pytest.raises(ServiceError, match="timed out"):
                service.execute(
                    lambda txn: txn.insert("E", (8, 9)),
                    template="link-forward", params=(8, 9),
                )
        finally:
            with service._commit_cond:
                service._commit_lock.release()
                service._commit_cond.notify_all()

    def test_window_overflow_retries_then_succeeds(self):
        # a one-commit validation window forces "fell out of the window"
        # conflicts under concurrency, but retries keep making progress
        store = Store(GRAPH_SCHEMA, Database.graph([(1, 2)]))
        service = TransactionService(
            store, standard_constraints(), history_limit=1, commit_timeout=30.0
        )
        def client(index):
            edge = (40 + index, 90 + index)
            outcome = service.execute(lambda txn: txn.insert("E", edge))
            assert outcome.committed

        threads = [threading.Thread(target=client, args=(i,)) for i in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        rows = service.snapshot().relation("E")
        assert all((40 + i, 90 + i) in rows for i in range(6))
