"""Serializability stress: every committed history equals a serial execution.

The service claims serializable isolation: the final committed state of any
concurrent run equals executing the committed transactions *serially in
commit order* from the initial state.  Hypothesis generates adversarial
workloads — small node universe (heavy contention), state-*dependent*
transactions (read-then-write toggles), risky constraint-violating writes —
and every example is executed by several worker threads and then replayed
serially against the commit log.

Run under ``REPRO_DELTA=verify`` (the CI stress leg does) this also shadows
every incremental evaluation the validation pipeline performs with a full
plan execution, so the MVCC layer and the delta engine cross-check each
other.
"""

from __future__ import annotations

import threading

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.db import Database
from repro.service import SnapshotTransaction, build_service
from repro.service.workloads import NO_LOOPS, standard_constraints

NODES = 6

node = st.integers(min_value=0, max_value=NODES - 1)


def _link(a, b):
    a, b = min(a, b), max(a, b)

    def fn(txn):
        txn.insert("E", (a, b))

    return ("link-forward", (a, b), fn) if a != b else (None, (a, b), fn)


def _add_edge(a, b):
    def fn(txn):
        txn.insert("E", (a, b))

    return ("add-edge", (a, b), fn)


def _unlink(a, b):
    def fn(txn):
        txn.delete("E", (a, b))

    return ("unlink", (a, b), fn)


def _toggle(a, b):
    # state-dependent: the classic serializability trap — behaviour depends
    # on a read, so stale validation shows up as a replay mismatch
    def fn(txn):
        if txn.contains("E", (a, b)):
            txn.delete("E", (a, b))
        elif a != b:
            txn.insert("E", (a, b))

    return (None, (a, b), fn)


def _probe(a, b):
    def fn(txn):
        txn.contains("E", (a, b))
        txn.evaluate(NO_LOOPS)

    return (None, (a, b), fn)


_MAKERS = (_link, _add_edge, _unlink, _toggle, _probe)

operation = st.tuples(st.integers(min_value=0, max_value=len(_MAKERS) - 1), node, node)

edge = st.tuples(node, node).filter(lambda e: e[0] != e[1]).map(
    lambda e: (min(e), max(e))
)


@settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    st.frozensets(edge, max_size=8),
    st.lists(operation, min_size=4, max_size=18),
    st.integers(min_value=2, max_value=4),
)
def test_committed_history_is_serializable(edges, op_specs, workers):
    initial = Database.graph(edges)
    constraints = standard_constraints()
    if not all(c.holds(initial) for c in constraints):
        # forward edges only: loop-free by construction; triangles impossible
        raise AssertionError("forward-only initial graph must satisfy the invariant")
    service = build_service(initial, commit_timeout=30.0)
    ops = [_MAKERS[kind](a, b) for kind, a, b in op_specs]

    errors = []

    def worker(slot):
        try:
            for index in range(slot, len(ops), workers):
                template, params, fn = ops[index]
                service.execute(fn, template=template, params=params, tag=index)
        except BaseException as exc:  # noqa: BLE001
            errors.append(exc)

    threads = [threading.Thread(target=worker, args=(slot,)) for slot in range(workers)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not errors, errors[0]

    # the invariant must hold on the committed state no matter what happened
    assert service.invariant_holds()

    # replay the committed transactions serially, in commit order
    replay = initial
    for tag in service.commit_log:
        _template, _params, fn = ops[tag]
        handle = SnapshotTransaction(replay, -1)
        fn(handle)
        replay = replay.apply_delta(handle.delta())
        assert all(c.holds(replay) for c in constraints)

    # ...and land on exactly the state the service committed (content hash
    # equality: Database.__eq__ compares relations, __hash__ is the XOR
    # content hash patched along apply_delta)
    final = service.snapshot()
    assert hash(replay) == hash(final)
    assert replay == final


@settings(max_examples=10, deadline=None)
@given(st.lists(operation, min_size=2, max_size=10))
def test_single_worker_equals_sequential(op_specs):
    """With one worker the service is just a slow serial executor."""
    initial = Database.graph([(0, 1), (1, 2), (3, 4)])
    service = build_service(initial, commit_timeout=30.0)
    ops = [_MAKERS[kind](a, b) for kind, a, b in op_specs]
    for index, (template, params, fn) in enumerate(ops):
        service.execute(fn, template=template, params=params, tag=index)

    replay = initial
    for tag in service.commit_log:
        handle = SnapshotTransaction(replay, -1)
        ops[tag][2](handle)
        replay = replay.apply_delta(handle.delta())
    assert replay == service.snapshot()
    assert service.invariant_holds()
