"""Commit-path failures through the scheduler: typed aborts, retry, deadline.

The regression at the heart of this file: a storage-engine failure during
the group-commit apply used to escape as a raw exception from the leader's
``execute`` call.  Now it surfaces as a **typed retryable abort** on every
transaction in the batch — leader and followers alike — with the store
unmutated and all follower threads released.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro import faults
from repro.db import Database
from repro.db.engines import StorageEngineError
from repro.service import ServiceError, build_service
from repro.service.scheduler import (
    COMMIT_RETRIES_ENV,
    DEFAULT_COMMIT_RETRIES,
    classify_commit_error,
    default_commit_retries,
)


@pytest.fixture(autouse=True)
def clean_hooks():
    faults.uninstall()
    yield
    faults.uninstall()


@pytest.fixture
def service():
    svc = build_service(Database.graph([(1, 2), (2, 3)]))
    yield svc
    svc.close()


def add_edge(src, dst):
    return lambda txn: txn.insert("E", (src, dst))


class TestTypedAborts:
    def test_commit_fault_is_a_typed_retryable_abort(self, service):
        service.commit_retries = 0  # surface the failure, no internal retry
        version_before = service.store.version
        faults.install(faults.FaultPlan().site("storage.commit_batch", exc="storage"))
        outcome = service.execute(add_edge(3, 4), template="link-forward", params=(3, 4))
        assert outcome.status == "aborted"
        assert outcome.retryable is True
        assert "commit failed" in outcome.reason
        assert service.store.version == version_before
        assert (3, 4) not in service.snapshot().relation("E")
        assert service.stats.commit_failures >= 1

        # the service survives: with the fault gone the same work commits
        faults.uninstall()
        outcome = service.execute(add_edge(3, 4), template="link-forward", params=(3, 4))
        assert outcome.committed

    def test_injected_fault_default_kind_is_also_retryable(self, service):
        service.commit_retries = 0
        faults.install(faults.FaultPlan().site("storage.commit_batch"))
        outcome = service.execute(add_edge(3, 4), template="link-forward", params=(3, 4))
        assert outcome.status == "aborted"
        assert outcome.retryable is True

    def test_followers_are_released_with_typed_aborts(self, service):
        service.commit_retries = 0
        faults.install(faults.FaultPlan().site("storage.commit_batch", exc="storage"))
        outcomes = {}

        def run(i):
            outcomes[i] = service.execute(
                add_edge(10 + i, 11 + i),
                template="link-forward", params=(10 + i, 11 + i),
            )

        threads = [threading.Thread(target=run, args=(i,)) for i in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30.0)
        assert not any(thread.is_alive() for thread in threads), "follower leaked"
        assert len(outcomes) == 6
        for outcome in outcomes.values():
            assert outcome.status == "aborted"
            assert outcome.retryable is True
        assert service.snapshot().relation("E") == frozenset({(1, 2), (2, 3)})


class TestTransientRetry:
    def test_transient_fault_is_retried_to_success(self, service):
        faults.install(
            faults.FaultPlan().site("storage.commit_batch", exc="storage", hits=(1,))
        )
        outcome = service.execute(add_edge(3, 4), template="link-forward", params=(3, 4))
        assert outcome.committed
        assert service.stats.transient_retries >= 1
        assert (3, 4) in service.snapshot().relation("E")

    def test_retry_budget_exhaustion_aborts(self, service):
        service.commit_retries = 2
        faults.install(faults.FaultPlan().site("storage.commit_batch", exc="storage"))
        outcome = service.execute(add_edge(3, 4), template="link-forward", params=(3, 4))
        assert outcome.status == "aborted"
        assert outcome.retryable is True
        assert service.stats.transient_retries == 2

    def test_transient_retries_do_not_force_serial_fallback(self, service):
        # a transaction that needed transient retries must not burn its
        # optimistic budget: serial fallback keys on conflict attempts only
        faults.install(
            faults.FaultPlan().site("storage.commit_batch", exc="storage", hits=(1, 2))
        )
        outcome = service.execute(add_edge(3, 4), template="link-forward", params=(3, 4))
        assert outcome.committed
        assert service.stats.serial_fallbacks == 0


class TestDeadline:
    def test_expired_deadline_raises_service_error(self, service):
        with pytest.raises(ServiceError):
            service.execute(
                add_edge(3, 4),
                template="link-forward", params=(3, 4),
                deadline=time.monotonic() - 0.001,
            )

    def test_deadline_bounds_transient_retries(self, service):
        service.commit_retries = 50
        faults.install(faults.FaultPlan().site("storage.commit_batch", exc="storage"))
        begun = time.monotonic()
        try:
            outcome = service.execute(
                add_edge(3, 4),
                template="link-forward", params=(3, 4),
                deadline=begun + 0.2,
            )
            assert outcome.status == "aborted"
        except ServiceError:
            pass  # deadline cut the loop before an outcome — also valid
        assert time.monotonic() - begun < 5.0

    def test_generous_deadline_commits_normally(self, service):
        outcome = service.execute(
            add_edge(3, 4),
            template="link-forward", params=(3, 4),
            deadline=time.monotonic() + 30.0,
        )
        assert outcome.committed


class TestLatencySites:
    def test_leader_stall_and_validate_delay_only_slow_things_down(self, service):
        faults.install(
            faults.FaultPlan()
            .site("service.leader.stall", latency=0.01, exc="none")
            .site("service.validate.delay", latency=0.01, exc="none")
        )
        outcome = service.execute(add_edge(3, 4), template="link-forward", params=(3, 4))
        assert outcome.committed


class TestKnobsAndClassifier:
    def test_classify_commit_error(self):
        assert classify_commit_error(StorageEngineError("x"))
        assert classify_commit_error(OSError(5, "io"))
        assert classify_commit_error(TimeoutError())
        assert classify_commit_error(faults.InjectedFault("site"))
        assert not classify_commit_error(ValueError("x"))
        assert not classify_commit_error(KeyError("x"))

    def test_default_commit_retries_env(self, monkeypatch):
        monkeypatch.setenv(COMMIT_RETRIES_ENV, "7")
        assert default_commit_retries() == 7
        monkeypatch.delenv(COMMIT_RETRIES_ENV)
        assert default_commit_retries() == DEFAULT_COMMIT_RETRIES

    def test_garbage_env_warns_and_falls_back(self, monkeypatch):
        monkeypatch.setenv(COMMIT_RETRIES_ENV, "many")
        with pytest.warns(RuntimeWarning):
            assert default_commit_retries() == DEFAULT_COMMIT_RETRIES
