"""The example scripts run end-to-end and report the expected shapes."""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"


def run_example(name, capsys):
    runpy.run_path(str(EXAMPLES_DIR / name), run_name="__main__")
    return capsys.readouterr().out


def test_quickstart(capsys):
    out = run_example("quickstart.py", capsys)
    assert "guarded transaction refused to run" in out
    assert "on the cleaned database it commits" in out


def test_integrity_maintenance(capsys):
    out = run_example("integrity_maintenance.py", capsys)
    assert "unchecked" in out and "runtime-check" in out and "static-precondition" in out
    # the static policy line reports zero roll-backs
    static_line = next(line for line in out.splitlines() if line.startswith("static-precondition"))
    columns = static_line.split()
    assert columns[3] == "0"  # rolled back column


def test_transaction_verification(capsys):
    out = run_example("transaction_verification.py", capsys)
    assert "VIOLATES" in out
    assert "guarded version preserves the constraint" in out


def test_expressiveness_tour(capsys):
    out = run_example("expressiveness_tour.py", capsys)
    assert "Theorem B" in out
    assert "refuted" in out
    assert "True" in out
