"""Integration tests: one test class per result of the paper.

These tests exercise the public API end-to-end and assert the *shape* of each
result (who wins, where the separations appear), mirroring the experiment
index in DESIGN.md / EXPERIMENTS.md.
"""

import pytest

from repro.db import (
    Database,
    all_graphs,
    chain,
    chain_and_cycles,
    cycle,
    diagonal_graph,
    double_cycle_family,
    linear_order,
    single_cycle_family,
    transitive_closure,
    two_branch_tree,
)
from repro.db.graph import same_generation
from repro.fmt import (
    degree_count,
    duplicator_wins,
    hanf_equivalent,
    same_type_counts,
)
from repro.logic import evaluate, parse
from repro.logic.builder import (
    alpha_isolated_exactly,
    has_isolated_loop,
    psi_cc,
    totally_connected,
)
from repro.core import (
    ChainTransaction,
    ChainWpcCalculator,
    PrerelationSpec,
    PreservationReduction,
    SemanticPrecondition,
    WpcCalculator,
    check_wpc,
    find_wpc_counterexample,
    preserves_on,
)
from repro.transactions import (
    FOProgram,
    InsertWhere,
    is_generic_on,
    sg_transaction,
    tc_transaction,
    dtc_transaction,
)


class TestFactA_Proposition1:
    """The Preserve problem encodes finite validity (the undecidability reduction)."""

    def test_reduction_equivalence_on_bounded_domains(self, graphs_3):
        family = graphs_3[:256]
        for beta in [
            parse("forall x y . E(x, y) -> E(x, y)"),
            parse("exists x . E(x, x)"),
            parse("forall x . exists y . E(x, y)"),
        ]:
            assert PreservationReduction(beta).reduction_agrees_on(family)


class TestTheoremB_NoWpcForRecursiveTransactions:
    """tc / dtc / same-generation admit no FO weakest precondition: the witness
    families behind each claim behave as the proofs require."""

    def test_claim1_connectivity_witness(self):
        # wpc(tc, forall x y E(x,y)) would define connectivity; the cycle pair
        # C^1_n / C^2_n agrees on all low-rank FO sentences yet differs on
        # connectivity of the tc image.
        constraint = totally_connected()
        one, two = single_cycle_family(3), double_cycle_family(3)
        semantic = SemanticPrecondition(tc_transaction(), constraint)
        assert semantic.holds(one) != semantic.holds(two)
        assert duplicator_wins(one, two, 2)

    def test_claim2_chain_witness(self):
        # psi_CC & wpc(dtc, alpha) would define chains; the chain / chain+cycle
        # pair separates the dtc images but not low-rank FO.
        alpha = parse("forall x y . x != y -> E(x, y) | E(y, x)")
        chain_graph = chain(4)
        chain_cycle = chain_and_cycles(2, [2])
        semantic = SemanticPrecondition(dtc_transaction(), alpha)
        assert semantic.holds(chain_graph)
        assert not semantic.holds(chain_cycle)
        assert evaluate(psi_cc(), chain_graph) and evaluate(psi_cc(), chain_cycle)

    @pytest.mark.parametrize("r", [1, 2])
    def test_claim3_hanf_equivalence_of_gnn_family(self, r):
        n = 2 * r + 2
        g_even, g_odd = two_branch_tree(n, n), two_branch_tree(n - 1, n + 1)
        assert same_type_counts(g_even, g_odd, r)
        # yet alpha_i (i isolated nodes in the sg image) separates them
        assert evaluate(alpha_isolated_exactly(1), same_generation(g_even))
        assert evaluate(alpha_isolated_exactly(3), same_generation(g_odd))

    def test_sg_images_structure(self):
        image = same_generation(two_branch_tree(3, 3))
        # on a tree every connected component of sg is a complete graph (with loops)
        from repro.db.graph import connected_components

        for component in connected_components(image):
            sub = image.restrict_domain(component)
            size = len(component)
            assert len(sub.edges) == size * size


class TestTheoremC_NoLanguageCapturesWPC:
    """The diagonalisation's two certified properties (checked in unit tests)
    combine into the statement: for every enumerated language there is a
    verifiable transaction outside it."""

    def test_diagonal_transaction_escapes_toy_language(self):
        from repro.core import DiagonalConstruction
        from repro.transactions import (
            IdentityTransaction,
            TransactionLanguage,
            complete_graph_transaction,
            diagonal_transaction,
        )

        language = TransactionLanguage(
            "toy",
            transactions=[IdentityTransaction(), tc_transaction(), diagonal_transaction(),
                          complete_graph_transaction()],
        )
        construction = DiagonalConstruction(language, search_limit=3000)
        diagonal = construction.transaction(depth=4)
        for index in range(1, 5):
            witness = construction.graphs[construction.P(index)]
            assert diagonal.apply(witness) != language[index - 1].apply(witness)


class TestTheoremD_7_ChainTransactionSeparation:
    """A generic PTIME transaction in WPC(FO) - PR(FO)."""

    def test_in_wpc_fo(self, graphs_3):
        T = ChainTransaction()
        calculator = ChainWpcCalculator(T)
        for constraint in [totally_connected(), has_isolated_loop(), parse("exists x y . E(x, y) & x != y")]:
            precondition = calculator.wpc(constraint)
            assert check_wpc(T, constraint, precondition, graphs_3[:200])

    def test_not_in_pr_fo_degree_argument(self):
        # a prerelation over pure FO would compute tc on chains; but the degree
        # count of T(chain(n)) grows with n while FO queries have bounded
        # degree counts on bounded-degree inputs
        T = ChainTransaction()
        outputs = [degree_count(T.apply(chain(n))) for n in (4, 8, 16, 32)]
        assert all(b > a for a, b in zip(outputs, outputs[1:]))

    def test_generic_and_datalog_definable(self, graphs_2):
        from repro.core import chain_transaction_datalog

        T = ChainTransaction()
        assert is_generic_on(T, [chain(4), cycle(3)], extra_universe=[70, 71])
        D = chain_transaction_datalog()
        assert all(D.apply(g) == T.apply(g) for g in graphs_2)


class TestCorollary3_RankBlowup:
    def test_wpc_rank_at_least_exponential(self):
        calculator = ChainWpcCalculator()
        data = []
        for constraint in [
            parse("exists x y . E(x, y)"),                      # rank 2
            parse("exists x y z . E(x, y) & E(y, z) & x != z"),  # rank 3
        ]:
            rank_in = constraint.quantifier_rank()
            rank_out = calculator.wpc(constraint).quantifier_rank()
            data.append((rank_in, rank_out))
        for rank_in, rank_out in data:
            assert rank_out >= 2 ** rank_in


class TestTheoremE_8_RobustVerifiability:
    def test_prerelation_transactions_verifiable_under_extensions(self, graphs_2):
        from repro.logic import arithmetic_signature, successor_signature, EMPTY_SIGNATURE
        from repro.core import robustness_check

        program = FOProgram([InsertWhere("E", ("x", "y"), parse("E(y, x)"))], name="sym")
        spec = PrerelationSpec.from_fo_program(program)
        result = robustness_check(
            spec,
            [("no-loops", parse("forall x . ~E(x, x)")),
             ("out-regular", parse("forall x . (exists y . E(x, y)) -> exists z . E(z, x)"))],
            [EMPTY_SIGNATURE, successor_signature(), arithmetic_signature()],
            graphs_2,
        )
        assert result.all_correct

    def test_chain_transaction_is_not_robust(self):
        """Proposition 5: the Theorem 7 transaction fails verifiability once a
        constant is available — every candidate from a syntactic family of
        small FOc sentences is refuted on a finite family of graphs."""
        from repro.core import chain_test_reduction, proposition5_constraint

        T = ChainTransaction()
        family = (
            [chain(n) for n in (2, 3, 4)]
            + [chain(3, labels=["c", 1, 2]), chain_and_cycles(2, [3], labels=[0, 1, "c", 3, 4])]
            + [cycle(3)]
        )
        candidates = [parse("true"), parse("false"), psi_cc(), proposition5_constraint("c")]
        for candidate in candidates:
            assert chain_test_reduction(candidate, "c", family, T) is not None


class TestIntegrityMaintenanceStory:
    """The introduction's guarded-transaction recipe, end to end."""

    def test_guard_makes_unsafe_transaction_safe(self, graphs_3):
        constraint = parse("forall x . ~E(x, x)")
        program = FOProgram(
            [InsertWhere("E", ("x", "y"), parse("exists z . E(x, z) & E(z, y)"))],
            name="compose",
        )
        spec = PrerelationSpec.from_fo_program(program)
        unsafe = spec.as_transaction()
        sample = graphs_3[:200]
        # the raw transaction does not preserve loop-freeness
        assert not preserves_on(unsafe, constraint, sample)
        # the guarded version does
        from repro.core import make_safe

        precondition = WpcCalculator(spec).wpc(constraint)
        safe = make_safe(unsafe, precondition, on_abort="identity")
        assert preserves_on(safe, constraint, sample)
