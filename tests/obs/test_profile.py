"""Plan-execution profiling: measured node times in explain, q-error feed."""

import re

import pytest

from repro.db import Database
from repro.engine.backend import CompiledBackend
from repro.logic import parse
from repro.obs import metrics
from repro.obs.profile import PlanProfiler, observe_estimation


class TestPlanProfiler:
    def test_measure_accumulates_per_node(self):
        profiler = PlanProfiler()
        node = object()
        assert profiler.measure(node, lambda: frozenset({(1,)})) == frozenset({(1,)})
        profiler.measure(node, lambda: frozenset())
        seconds = profiler.seconds(node)
        assert seconds is not None and seconds >= 0.0
        assert profiler.seconds(object()) is None
        assert profiler.total_seconds() >= seconds

    def test_explain_includes_measured_times(self):
        backend = CompiledBackend()
        db = Database.graph([(1, 2), (2, 3), (3, 1)])
        text = backend.explain(
            parse("forall x . forall y . (E(x, y) -> E(y, x))"), db
        )
        timed_lines = [l for l in text.splitlines() if "time=" in l]
        assert timed_lines, text
        for line in timed_lines:
            match = re.search(r"time=(\d+\.\d+)ms", line)
            assert match is not None, line
            assert float(match.group(1)) >= 0.0

    def test_rows_without_profiler_slot_still_work(self):
        backend = CompiledBackend()
        db = Database.graph([(1, 2)])
        assert backend.evaluate(parse("forall x . ~E(x, x)"), db)


class TestEstimationFeedback:
    def test_observe_estimation_is_a_smoothed_q_error(self):
        try:
            registry = metrics.configure("on")
            assert observe_estimation(10.0, 10.0) == pytest.approx(1.0)
            over = observe_estimation(100.0, 10.0)
            under = observe_estimation(10.0, 100.0)
            assert over > 1.0 and under > 1.0
            hist = registry.snapshot()["engine.optimizer.estimation_ratio"]
            assert hist["count"] == 3
        finally:
            metrics.configure("on")

    def test_backend_estimation_checks_feed_the_histogram(self):
        try:
            registry = metrics.configure("on")
            backend = CompiledBackend()
            db = Database.graph([(i, i + 1) for i in range(20)])
            backend.evaluate(
                parse("forall x . forall y . (E(x, y) -> ~E(y, x))"), db
            )
            snap = registry.snapshot()
            if backend.estimation_checks:
                hist = snap["engine.optimizer.estimation_ratio"]
                assert hist["count"] == backend.estimation_checks
        finally:
            metrics.configure("on")
