"""The metrics registry: instruments, thread safety, off mode, exposition."""

import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs import metrics
from repro.obs.metrics import (
    LEGACY_KEY_MAP,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    merge_snapshots,
)


@pytest.fixture
def registry():
    return MetricsRegistry()


class TestInstruments:
    def test_counter_accumulates(self, registry):
        counter = registry.counter("test.counter")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        assert registry.snapshot() == {"test.counter": 5}

    def test_same_name_shares_the_instrument(self, registry):
        assert registry.counter("a.b") is registry.counter("a.b")

    def test_kind_mismatch_raises(self, registry):
        registry.counter("a.b")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("a.b")

    def test_invalid_names_rejected(self, registry):
        for bad in ("", ".", "a..b", "a b", "a.b!"):
            with pytest.raises(ValueError):
                registry.counter(bad)

    def test_gauge_moves_both_ways(self, registry):
        gauge = registry.gauge("test.gauge")
        gauge.set(10)
        gauge.inc(5)
        gauge.dec(3)
        assert gauge.value == 12

    def test_histogram_bucket_placement(self, registry):
        hist = registry.histogram("test.hist", buckets=(1.0, 10.0))
        for value in (0.5, 1.0, 5.0, 10.0, 99.0):
            hist.observe(value)
        export = hist.export()
        assert export["count"] == 5
        assert export["sum"] == pytest.approx(115.5)
        # bounds are inclusive upper bounds; 99.0 overflows into +Inf
        assert export["buckets"] == {"1.0": 2, "10.0": 2, "+Inf": 1}


class TestConcurrency:
    @settings(max_examples=25, deadline=None)
    @given(
        amounts=st.lists(
            st.integers(min_value=1, max_value=1000), min_size=1, max_size=40
        ),
        threads=st.integers(min_value=2, max_value=8),
    )
    def test_concurrent_increments_sum_exactly(self, amounts, threads):
        """Racing increments never lose updates: snapshot == serial total."""
        registry = MetricsRegistry()
        counter = registry.counter("race.counter")
        barrier = threading.Barrier(threads)

        def worker():
            barrier.wait()
            for amount in amounts:
                counter.inc(amount)

        pool = [threading.Thread(target=worker) for _ in range(threads)]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join()
        assert registry.snapshot()["race.counter"] == sum(amounts) * threads


class TestNullRegistry:
    def test_everything_is_a_shared_noop(self):
        null = NullRegistry()
        assert null.counter("a.b") is null.gauge("c.d")
        null.counter("a.b").inc(10)
        null.histogram("e.f").observe(1.0)
        assert null.snapshot() == {}
        assert null.to_prometheus() == ""
        assert not null.enabled

    def test_configure_swaps_the_process_registry(self):
        try:
            off = metrics.configure("off")
            assert metrics.get_registry() is off
            assert not metrics.metrics_enabled()
            on = metrics.configure("on")
            assert metrics.get_registry() is on
            assert metrics.metrics_enabled()
            with pytest.raises(ValueError):
                metrics.configure("maybe")
        finally:
            metrics.configure("on")


class TestExposition:
    def test_prometheus_text_format(self, registry):
        registry.counter("engine.plan_cache.hits").inc(3)
        hist = registry.histogram("svc.lat", buckets=(1.0, 2.0))
        hist.observe(0.5)
        hist.observe(5.0)
        text = registry.to_prometheus()
        assert "# TYPE engine_plan_cache_hits counter" in text
        assert "engine_plan_cache_hits 3" in text
        # bucket counts are cumulative in the exposition format
        assert 'svc_lat_bucket{le="1.0"} 1' in text
        assert 'svc_lat_bucket{le="+Inf"} 2' in text
        assert "svc_lat_count 2" in text

    def test_snapshot_is_sorted_and_json_ready(self, registry):
        registry.counter("z.last").inc()
        registry.counter("a.first").inc()
        assert list(registry.snapshot()) == ["a.first", "z.last"]


class TestMergeSnapshots:
    def test_numeric_metrics_sum(self):
        merged = merge_snapshots({"a.b": 2, "c.d": 1.5}, {"a.b": 3})
        assert merged == {"a.b": 5, "c.d": 1.5}

    def test_histograms_merge_bucketwise(self):
        one = {"h": {"count": 2, "sum": 3.0, "buckets": {"1.0": 2, "+Inf": 0}}}
        two = {"h": {"count": 1, "sum": 9.0, "buckets": {"1.0": 0, "+Inf": 1}}}
        merged = merge_snapshots(one, two)
        assert merged["h"] == {
            "count": 3,
            "sum": 12.0,
            "buckets": {"1.0": 2, "+Inf": 1},
        }


class TestLegacyKeyMap:
    def test_every_alias_is_a_valid_dotted_name(self):
        registry = MetricsRegistry()
        for legacy, dotted in LEGACY_KEY_MAP.items():
            assert legacy and "." not in legacy
            registry.counter(dotted)  # raises on an invalid name

    def test_backend_counters_flow_into_the_dotted_scheme(self):
        from repro.db import Database
        from repro.engine.backend import CompiledBackend
        from repro.logic import parse

        try:
            registry = metrics.configure("on")
            backend = CompiledBackend()
            db = Database.graph([(1, 2), (2, 3)])
            formula = parse("forall x . ~E(x, x)")
            assert backend.evaluate(formula, db)
            backend.evaluate(formula, db)
            snap = registry.snapshot()
            # dotted twins mirror the legacy bare-int attributes exactly
            assert snap["engine.delta.misses"] == backend.delta_misses
            assert snap["engine.compile.fallbacks"] == backend.fallbacks
            assert snap["engine.optimizer.naive_wins"] == backend.naive_wins
            # memo traffic is registry-only (no legacy attribute existed):
            # the second evaluate of the same formula must hit the memo
            assert snap["engine.plan_cache.hits"] >= 1
            assert snap["engine.plan_cache.misses"] >= 1
        finally:
            metrics.configure("on")


def test_counter_instances_have_independent_state():
    a, b = Counter("x.a"), Counter("x.b")
    a.inc(3)
    assert (a.value, b.value) == (3, 0)
    g = Gauge("x.g")
    g.set(-2)
    assert g.value == -2
    h = Histogram("x.h", buckets=(1.0,))
    h.observe(0.0)
    assert h.count == 1
