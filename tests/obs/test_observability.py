"""TransactionService.observability(): one merged snapshot of every surface."""

import pytest

from repro.db import Database
from repro.obs import metrics
from repro.service import build_service


@pytest.fixture
def restore_registry():
    yield
    metrics.configure("on")


def _drive(service):
    service.execute(
        lambda txn: txn.insert("E", (3, 4)),
        template="link-forward", params=(3, 4),
    )
    service.execute(lambda txn: txn.contains("E", (1, 2)))
    service.execute(lambda txn: txn.insert("E", (9, 9)))  # aborted: loop


class TestObservability:
    def test_merged_sections(self, restore_registry):
        metrics.configure("on")
        service = build_service(Database.graph([(1, 2), (2, 3)]))
        try:
            _drive(service)
            view = service.observability()
            assert set(view) == {
                "service", "admission", "backend", "store", "metrics", "trace",
            }
            assert view["service"] == service.stats.as_dict()
            assert view["service"]["submitted"] == 3
            assert view["admission"]["templates"] >= 1
            assert "plans" in view["backend"]
            assert view["store"]["transactions"]["committed"] >= 1
            assert view["store"]["engine"]["engine"] in ("memory", "wal")
            assert view["metrics"]["service.submitted"] >= 3
            # tracing may be on via REPRO_TRACE in some CI legs
            assert set(view["trace"]) == {"enabled", "finished_spans"}
            if not view["trace"]["enabled"]:
                assert view["trace"]["finished_spans"] == 0
        finally:
            service.close()

    def test_registry_mirrors_service_counters(self, restore_registry):
        registry = metrics.configure("on")
        service = build_service(Database.graph([(1, 2), (2, 3)]))
        try:
            _drive(service)
            snap = registry.snapshot()
            stats = service.stats.as_dict()
            assert snap["service.submitted"] == stats["submitted"]
            assert snap["service.committed"] == stats["committed"]
            assert snap["service.aborted"] == stats["aborted"]
            assert snap["service.commit.batches"] == stats["batches"]
            batch_hist = snap["service.commit.batch_size"]
            assert batch_hist["count"] == stats["batches"]
            assert batch_hist["sum"] == stats["batched_commits"]
            assert snap["service.commit.max_batch"] == stats["max_batch"]
            # validation only runs against a non-empty foreign delta, so the
            # counter may not exist in an uncontended run
            assert snap.get("service.validate.checks", 0) >= 0
            assert snap["store.committed"] >= 1
            assert snap["storage.batches"] >= 1
        finally:
            service.close()

    def test_off_mode_leaves_the_merged_view_usable(self, restore_registry):
        metrics.configure("off")
        service = build_service(Database.graph([(1, 2), (2, 3)]))
        try:
            _drive(service)
            view = service.observability()
            assert view["metrics"] == {}
            assert view["service"]["submitted"] == 3
        finally:
            service.close()


class TestWallTimeSplit:
    def test_commit_and_abort_wall_time_are_separate(self):
        from repro.db import GRAPH_SCHEMA, Store, TransactionAborted

        store = Store(GRAPH_SCHEMA, Database.graph([(1, 2)]))
        store.register_checker("no-loops", lambda db: not any(
            a == b for a, b in db.relation("E")
        ))
        store.begin()
        store.insert("E", (2, 3))
        store.commit()
        assert store.stats.committed_wall_time > 0.0
        assert store.stats.aborted_wall_time == 0.0

        committed_before = store.stats.committed_wall_time
        store.begin()
        store.insert("E", (4, 4))
        with pytest.raises(TransactionAborted):
            store.commit()
        # the aborted attempt lands in its own bucket — the committed figure
        # is no longer inflated by failed transactions
        assert store.stats.aborted_wall_time > 0.0
        assert store.stats.committed_wall_time == committed_before
        assert store.stats.wall_time == pytest.approx(
            store.stats.committed_wall_time + store.stats.aborted_wall_time
        )
