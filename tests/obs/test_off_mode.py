"""REPRO_METRICS=off must be invisible: same stats surfaces, empty registry."""

import pytest

from repro.db import Database, GRAPH_SCHEMA, Store
from repro.engine.backend import CompiledBackend
from repro.logic import parse
from repro.obs import metrics

FORMULA_TEXT = "forall x . ~E(x, x)"


@pytest.fixture
def restore_registry():
    yield
    metrics.configure("on")


def _run_backend():
    backend = CompiledBackend()
    db = Database.graph([(1, 2), (2, 3)])
    formula = parse(FORMULA_TEXT)
    backend.evaluate(formula, db)
    backend.evaluate(formula, db)
    return backend


def _run_store():
    store = Store(GRAPH_SCHEMA, Database.graph([(1, 2)]))
    store.begin()
    store.insert("E", (2, 3))
    store.commit()
    return store


class TestOffModeParity:
    def test_cache_stats_keys_identical_on_vs_off(self, restore_registry):
        metrics.configure("on")
        on_stats = _run_backend().cache_stats()
        metrics.configure("off")
        off_stats = _run_backend().cache_stats()
        assert sorted(on_stats) == sorted(off_stats)
        assert on_stats == off_stats

    def test_storage_stats_identical_on_vs_off(self, restore_registry):
        metrics.configure("on")
        on_store = _run_store()
        metrics.configure("off")
        off_store = _run_store()
        on_stats = on_store.storage_stats()
        off_stats = off_store.storage_stats()
        # each env-selected WAL engine gets its own temp dir; that path is
        # environmental, not an on/off discrepancy
        on_stats.pop("wal_dir", None)
        off_stats.pop("wal_dir", None)
        assert on_stats == off_stats
        assert on_store.stats.committed == off_store.stats.committed
        assert on_store.stats.wall_time > 0 and off_store.stats.wall_time > 0

    def test_off_mode_registry_records_nothing(self, restore_registry):
        metrics.configure("off")
        _run_backend()
        _run_store()
        assert metrics.get_registry().snapshot() == {}

    def test_service_stats_keys_identical_on_vs_off(self, restore_registry):
        from repro.service.scheduler import ServiceStats

        metrics.configure("on")
        on_stats = ServiceStats()
        on_stats.add(submitted=2, committed=1)
        on_stats.saw_batch(3)
        metrics.configure("off")
        off_stats = ServiceStats()
        off_stats.add(submitted=2, committed=1)
        off_stats.saw_batch(3)
        assert on_stats.as_dict() == off_stats.as_dict()
