"""Span tracing: nesting, ring buffer, JSONL dump, service span trees."""

import json
import os

import pytest

from repro.db import Database
from repro.obs import trace
from repro.obs.trace import render_tree, span_forest
from repro.service import build_service


@pytest.fixture
def tracing():
    trace.configure("on")
    trace.clear()
    yield
    trace.configure("off")


def _assert_well_formed(spans):
    """Every parent reference resolves and children sit inside their parent."""
    by_id = {record["span_id"]: record for record in spans}
    assert len(by_id) == len(spans)  # ids are unique
    for record in spans:
        parent_id = record.get("parent_id")
        if parent_id is None:
            continue
        parent = by_id.get(parent_id)
        assert parent is not None, f"orphan span {record['name']}"
        assert record["trace_id"] == parent["trace_id"]
        # a child opens after its parent opened (same-process clocks)
        if record["pid"] == parent["pid"]:
            assert record["ts"] >= parent["ts"] - 1e-6


class TestSpanBasics:
    def test_off_mode_is_one_shared_noop(self):
        trace.configure("off")
        assert trace.span("a") is trace.span("b")
        with trace.span("a") as opened:
            opened.annotate(ignored=True)
        assert trace.finished() == []
        assert not trace.trace_enabled()

    def test_nesting_follows_the_thread(self, tracing):
        with trace.span("outer", kind="test"):
            with trace.span("inner"):
                pass
            with trace.span("sibling"):
                pass
        spans = trace.finished()
        assert [s["name"] for s in spans] == ["inner", "sibling", "outer"]
        outer = spans[-1]
        assert outer["parent_id"] is None
        assert all(s["parent_id"] == outer["span_id"] for s in spans[:2])
        assert all(s["trace_id"] == outer["span_id"] for s in spans)
        assert outer["attrs"] == {"kind": "test"}

    def test_exceptions_mark_the_span_and_propagate(self, tracing):
        with pytest.raises(RuntimeError):
            with trace.span("doomed"):
                raise RuntimeError("boom")
        (record,) = trace.finished()
        assert record["attrs"]["error"] == "RuntimeError"

    def test_forest_and_rendering(self, tracing):
        with trace.span("root"):
            with trace.span("child"):
                pass
        forest = span_forest(trace.finished())
        assert len(forest) == 1
        assert forest[0]["span"]["name"] == "root"
        assert forest[0]["children"][0]["span"]["name"] == "child"
        text = render_tree(trace.finished())
        assert text.startswith("root")
        assert "\n  child" in text

    def test_path_mode_appends_jsonl(self, tmp_path):
        sink = tmp_path / "trace.jsonl"
        trace.configure("path", path=str(sink))
        try:
            with trace.span("persisted", n=1):
                pass
        finally:
            trace.configure("off")
        lines = sink.read_text().splitlines()
        assert len(lines) == 1
        record = json.loads(lines[0])
        assert record["name"] == "persisted"
        assert record["attrs"] == {"n": 1}


class TestAdoption:
    def test_adopt_reparents_orphans_and_marks_them(self, tracing):
        with trace.span("dispatch") as parent:
            parent_id = parent.span_id
        foreign = [
            {"name": "worker.root", "span_id": "f.1", "parent_id": None,
             "trace_id": "f.1", "ts": 1.0, "dur": 0.5, "pid": 999, "thread": 1},
            {"name": "worker.child", "span_id": "f.2", "parent_id": "f.1",
             "trace_id": "f.1", "ts": 1.1, "dur": 0.1, "pid": 999, "thread": 1},
        ]
        trace.adopt(foreign, parent_id=parent_id)
        spans = trace.finished()
        adopted = {s["span_id"]: s for s in spans if s.get("forwarded")}
        assert adopted["f.1"]["parent_id"] == parent_id
        assert adopted["f.2"]["parent_id"] == "f.1"  # worker nesting kept
        # the adopted subtree joins the dispatching span's trace
        parent_record = next(s for s in spans if s["span_id"] == parent_id)
        assert adopted["f.1"]["trace_id"] == parent_record["trace_id"]
        _assert_well_formed(spans)


class TestServiceSpanTrees:
    def test_conflict_retry_produces_one_tree_per_txn(self, tracing):
        service = build_service(Database.graph([(1, 2), (2, 3)]))
        try:
            state = {"first": True}

            def contended(txn):
                txn.contains("E", (1, 2))
                if state["first"]:
                    state["first"] = False
                    # a nested commit touches the row the outer txn read,
                    # so the outer validation must report a conflict
                    service.execute(lambda t: t.delete("E", (1, 2)))
                txn.insert("E", (8, 9))

            outcome = service.execute(
                contended, template="link-forward", params=(8, 9)
            )
            assert outcome.committed
            assert outcome.attempts == 2
            spans = trace.finished()
            _assert_well_formed(spans)
            txn_spans = [s for s in spans if s["name"] == "service.txn"]
            assert len(txn_spans) == 2  # the nested txn and the outer one
            outer = next(
                s for s in txn_spans
                if s["attrs"].get("attempts") == 2
            )
            assert outer["parent_id"] is None
            # the nested txn ran inside the outer optimistic attempt, so
            # contextvar parenting puts its whole tree under that attempt
            nested = next(s for s in txn_spans if s is not outer)
            assert nested["parent_id"] is not None
            assert nested["trace_id"] == outer["trace_id"]
            assert outer["attrs"]["status"] == "committed"
            children = [
                s["name"] for s in spans
                if s.get("parent_id") == outer["span_id"]
            ]
            # two optimistic attempts and two leader waits under one root
            assert children.count("service.txn_attempt") == 2
            assert children.count("service.leader_wait") == 2
            names = {s["name"] for s in spans}
            assert {"service.group_commit", "service.txn_commit",
                    "service.validate", "service.apply_delta",
                    "store.commit_batch"} <= names
        finally:
            service.close()

    def test_serial_fallback_span_tree(self, tracing):
        service = build_service(
            Database.graph([(1, 2), (2, 3)]), max_retries=0
        )
        try:
            outcome = service.execute(
                lambda txn: txn.insert("E", (4, 5)),
                template="link-forward", params=(4, 5),
            )
            assert outcome.committed
            assert service.stats.serial_fallbacks == 1
            spans = trace.finished()
            _assert_well_formed(spans)
            txn_commit = next(
                s for s in spans if s["name"] == "service.txn_commit"
            )
            assert txn_commit["attrs"]["serial"] is True
            group_commit = next(
                s for s in spans if s["name"] == "service.group_commit"
            )
            assert txn_commit["parent_id"] == group_commit["span_id"]
        finally:
            service.close()


class TestWorkerForwarding:
    def test_process_executor_spans_join_the_coordinator_tree(self, tracing):
        from repro.engine.parallel import ShardedBackend
        from repro.logic import parse

        backend = ShardedBackend(shards=4, procs=2)
        try:
            if backend._executor is None or backend._executor.kind != "procs":
                pytest.skip("process executor unavailable on this platform")
            db = Database.graph([(1, 2), (2, 3), (3, 1), (4, 5)])
            backend.evaluate(parse("forall x . ~E(x, x)"), db)
            spans = trace.finished()
            forwarded = [s for s in spans if s.get("forwarded")]
            if not forwarded:
                pytest.skip("pool degraded to in-process execution")
            _assert_well_formed(spans)
            shard_maps = {
                s["span_id"] for s in spans if s["name"] == "engine.shard_map"
            }
            assert all(s["name"] == "executor.task" for s in forwarded)
            assert all(s["parent_id"] in shard_maps for s in forwarded)
            assert all(s["pid"] != os.getpid() for s in forwarded)
        finally:
            backend.close()
