"""Incremental (delta) plan evaluation: agreement, coverage, regressions.

Three layers of defence:

* hypothesis streams — random update sequences against a panel of formulas
  covering every delta rule (scans, joins, semijoins, antijoins, unions,
  complements, counting, equality, constants), evaluated by a ``verify``-mode
  backend (every incremental result is shadowed by a full execution and must
  match) *and* cross-checked against the naive interpreter;
* targeted operator streams — deletions that kill the last support of a
  group/join key, domain growth and shrinkage, rollback-style branching;
* regressions for the satellite bugfixes (``REPRO_BACKEND`` typos, the
  naive-fallback memo, locked ``cache_stats``).
"""

from __future__ import annotations

import os
import subprocess
import sys
import warnings

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.db import Database, Delta, random_graph
from repro.engine import CompiledBackend, NaiveBackend, backend_from_name
from repro.logic import parse

NAIVE = NaiveBackend()

#: one formula per delta rule family
FORMULAS = [
    parse("forall x . ~E(x, x)"),                                        # scan + complement
    parse("forall x . forall y . E(x, y) -> E(y, x)"),                   # semijoin/antijoin
    parse("forall x . forall y . forall z . (E(x, y) & E(y, z)) -> ~E(z, x)"),  # join chain
    parse("exists x . exists y . E(x, y) & ~E(y, x)"),                   # antijoin
    parse("exists x . E(x, 0) | E(0, x)"),                               # union + constants
    parse("forall x . (exists y . E(x, y)) -> exists z . E(z, x)"),      # projections
    parse("exists>=2 x . exists y . E(x, y)"),                           # counting
    parse("exists x . exists y . E(x, y) & x = y"),                      # equality
    parse("exists x . E(x, 99)"),                                        # inactive constant
]


def apply_update(db, op, edge):
    if op == "insert":
        return db.insert("E", edge)
    return db.delete("E", edge)


def edge():
    node = st.integers(min_value=0, max_value=7)
    return st.tuples(node, node)


@given(
    st.frozensets(edge(), max_size=10),
    st.lists(st.tuples(st.sampled_from(["insert", "delete"]), edge()), max_size=12),
)
@settings(max_examples=60, deadline=None)
def test_incremental_stream_agrees_with_full_and_naive(base, updates):
    backend = CompiledBackend(delta="verify")  # every hit is shadow-checked
    db = Database.graph(base)
    for formula in FORMULAS:
        assert backend.evaluate(formula, db) == NAIVE.evaluate(formula, db)
    for op, e in updates:
        db = apply_update(db, op, e)
        for formula in FORMULAS:
            assert backend.evaluate(formula, db) == NAIVE.evaluate(formula, db)


def test_incremental_path_is_actually_taken():
    backend = CompiledBackend(delta="on")
    formula = parse("forall x . forall y . E(x, y) -> E(y, x)")
    db = random_graph(10, 0.3, seed=5)
    backend.evaluate(formula, db)
    for step in range(20):
        db = db.insert("E", (100 + step, 101 + step))  # always effective
        backend.evaluate(formula, db)
    assert backend.delta_hits == 20


def test_extensions_are_updated_incrementally_not_only_sentences():
    backend = CompiledBackend(delta="verify")
    formula = parse("E(x, y) & ~E(y, x)")
    db = Database.graph([(0, 1), (1, 0), (2, 3)])
    assert backend.extension(formula, db, ("x", "y")) == {(2, 3)}
    db = db.insert("E", (3, 2)).insert("E", (4, 5))
    assert backend.extension(formula, db, ("x", "y")) == {(4, 5)}
    db = db.delete("E", (1, 0))
    assert backend.extension(formula, db, ("x", "y")) == {(0, 1), (4, 5)}
    assert backend.delta_hits >= 2


def test_domain_growth_and_shrinkage():
    backend = CompiledBackend(delta="verify")
    connected = parse("forall x . exists y . E(x, y) | E(y, x)")
    db = Database.graph([(0, 1), (1, 2)])
    assert backend.evaluate(connected, db)
    db = db.insert("E", (7, 7))  # 7 enters the domain (as a loop)
    assert backend.evaluate(connected, db)
    db = db.insert("E", (8, 9))
    assert backend.evaluate(connected, db)
    db = db.delete("E", (8, 9))  # 8 and 9 leave the domain again
    assert backend.evaluate(connected, db)
    no_loops = parse("forall x . ~E(x, x)")
    assert not backend.evaluate(no_loops, db)
    db = db.delete("E", (7, 7))
    assert backend.evaluate(no_loops, db)


def test_group_count_support_dies_and_returns():
    backend = CompiledBackend(delta="verify")
    two_successors = parse("exists x . exists>=2 y . E(x, y)")
    db = Database.graph([(0, 1), (0, 2)])
    assert backend.evaluate(two_successors, db)
    db = db.delete("E", (0, 2))
    assert not backend.evaluate(two_successors, db)
    db = db.insert("E", (0, 3)).insert("E", (0, 4))
    assert backend.evaluate(two_successors, db)


def test_branching_streams_from_one_base_state():
    # rejected-update shape: many children of the same base, then a commit
    backend = CompiledBackend(delta="verify")
    no_loops = parse("forall x . ~E(x, x)")
    base = random_graph(8, 0.3, seed=2)
    base = base.delete("E", *[(v, v) for v in range(8)])
    assert backend.evaluate(no_loops, base)
    for v in range(5):
        candidate = base.insert("E", (v, v))
        assert not backend.evaluate(no_loops, candidate)  # each rejected
    committed = base.insert("E", (0, 1))
    assert backend.evaluate(no_loops, committed)
    assert backend.delta_hits >= 5


def test_explicit_domain_is_treated_as_fixed():
    backend = CompiledBackend(delta="verify")
    formula = parse("exists x . E(x, x)")
    domain = frozenset(range(4))
    db = Database.graph([(0, 1)])
    assert not backend.evaluate(formula, db, domain=domain)
    db = db.insert("E", (2, 2))
    assert backend.evaluate(formula, db, domain=domain)
    db = db.insert("E", (9, 9))  # outside the fixed domain
    assert backend.evaluate(formula, db, domain=domain)
    assert not backend.evaluate(parse("exists x . E(x, 9) & E(9, x)"), db, domain=domain)


def test_delta_off_backend_never_walks_provenance():
    backend = CompiledBackend(delta="off")
    formula = parse("forall x . ~E(x, x)")
    db = Database.graph([(0, 1)])
    backend.evaluate(formula, db)
    backend.evaluate(formula, db.insert("E", (1, 2)))
    assert backend.delta_hits == 0
    assert backend.delta_misses == 0


def test_bulk_deltas_update_in_one_step():
    backend = CompiledBackend(delta="verify")
    symmetric = parse("forall x . forall y . E(x, y) -> E(y, x)")
    db = Database.graph([(a, b) for a in range(6) for b in range(6) if a < b])
    assert not backend.evaluate(symmetric, db)
    mirrored = db.apply_delta(
        Delta(inserted={"E": [(b, a) for (a, b) in db.edges]})
    )
    assert backend.evaluate(symmetric, mirrored)
    assert backend.delta_hits >= 1


# ---------------------------------------------------------------------------
# regressions
# ---------------------------------------------------------------------------


def test_invalid_repro_backend_warns_instead_of_crashing_import():
    code = (
        "import warnings\n"
        "with warnings.catch_warnings(record=True) as caught:\n"
        "    warnings.simplefilter('always')\n"
        "    import repro\n"
        "    from repro.engine import active_backend\n"
        "assert any('REPRO_BACKEND' in str(w.message) for w in caught), caught\n"
        "assert active_backend().name == 'compiled'\n"
        "print('IMPORT-OK')\n"
    )
    env = dict(os.environ)
    env["REPRO_BACKEND"] = "compilde"  # the typo of the bug report
    env["PYTHONPATH"] = os.path.join(os.path.dirname(__file__), "..", "..", "src")
    proc = subprocess.run(
        [sys.executable, "-c", code], env=env, capture_output=True, text=True
    )
    assert proc.returncode == 0, proc.stderr
    assert "IMPORT-OK" in proc.stdout


def test_invalid_repro_delta_warns_and_defaults_on(monkeypatch):
    from repro.engine.backend import _delta_mode_from_env

    monkeypatch.setenv("REPRO_DELTA", "bogus")
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        assert _delta_mode_from_env() == "on"
    assert any("REPRO_DELTA" in str(w.message) for w in caught)


def test_backend_from_name_knows_the_delta_variants():
    assert backend_from_name("compiled-delta").delta_mode == "on"
    assert backend_from_name("compiled-nodelta").delta_mode == "off"
    with pytest.raises(ValueError, match="naive"):
        backend_from_name("not-a-backend")


def test_naive_fallback_results_are_memoised(monkeypatch):
    import repro.engine.backend as backend_module
    from repro.engine import CompileError

    def refuse(formula, variables):
        raise CompileError("forced")

    monkeypatch.setattr(backend_module, "compile_extension", refuse)
    backend = CompiledBackend()
    naive_calls = []
    original = NaiveBackend.extension

    def counting(self, formula, db, variables, signature, domain):
        naive_calls.append(formula)
        return original(self, formula, db, variables, signature, domain)

    monkeypatch.setattr(NaiveBackend, "extension", counting)
    formula = parse("exists x . E(x, x)")
    db = Database.graph([(0, 0)])
    assert backend.evaluate(formula, db)
    assert backend.evaluate(formula, db)
    assert backend.evaluate(formula, db)
    # the interpreter ran once; repeats were answered from the memo
    assert len(naive_calls) == 1
    assert backend.fallbacks == 1


def test_uncompilable_formulas_are_not_recompiled(monkeypatch):
    import repro.engine.backend as backend_module
    from repro.engine import CompileError

    attempts = []

    def refuse(formula, variables):
        attempts.append(formula)
        raise CompileError("forced")

    monkeypatch.setattr(backend_module, "compile_extension", refuse)
    backend = CompiledBackend()
    formula = parse("exists x . E(x, x)")
    for db in (Database.graph([(0, 0)]), Database.graph([(1, 2)])):
        backend.evaluate(formula, db)
    assert len(attempts) == 1  # the failure itself is cached


def test_cache_stats_is_consistent_and_locked():
    backend = CompiledBackend()
    db = Database.graph([(0, 1), (1, 2)])
    backend.evaluate(parse("exists x . exists y . E(x, y)"), db)
    stats = backend.cache_stats()
    assert stats["plans"] >= 1
    assert stats["memo"] >= 1
    assert "states" in stats
    backend.clear_caches()
    cleared = backend.cache_stats()
    assert cleared["plans"] == 0 and cleared["memo"] == 0 and cleared["states"] == 0


class TestForeignDeltaHelpers:
    """evaluate_under / predicate_changed: the MVCC validation primitives."""

    def test_evaluate_under_matches_direct_evaluation(self):
        from repro.engine import evaluate_under

        backend = CompiledBackend()
        base = Database.graph([(0, 1), (1, 2)])
        delta = Delta.insertion("E", (2, 2))
        formula = parse("forall x . ~E(x, x)")
        assert backend.evaluate(formula, base)
        assert evaluate_under(formula, base, delta, backend=backend) is False
        # an empty delta evaluates against the base itself
        assert evaluate_under(formula, base, Delta(), backend=backend) is True

    def test_predicate_changed_detects_flips_only(self):
        from repro.engine import predicate_changed

        backend = CompiledBackend()
        base = Database.graph([(0, 1), (1, 2)])
        no_loops = parse("forall x . ~E(x, x)")
        assert predicate_changed(no_loops, base, Delta.insertion("E", (3, 3)), backend=backend)
        assert not predicate_changed(no_loops, base, Delta.insertion("E", (3, 4)), backend=backend)
        assert not predicate_changed(no_loops, base, Delta(), backend=backend)

    def test_helpers_ride_the_incremental_path(self):
        from repro.engine import predicate_changed

        backend = CompiledBackend(delta="on")
        base = Database.graph([(i, i + 1) for i in range(12)])
        formula = parse("forall x . forall y . E(x, y) -> ~E(y, x)")
        backend.evaluate(formula, base)  # warm the node states
        hits = backend.delta_hits
        assert not predicate_changed(
            formula, base, Delta.insertion("E", (50, 51)), backend=backend
        )
        assert backend.delta_hits > hits  # answered through the delta rules
