"""Unit tests for the plan operators, the compiler's plan shapes, the
database hash indexes, and backend selection plumbing."""

from __future__ import annotations

import pytest

from repro.db import Database, DatabaseError, chain, cycle
from repro.engine import (
    Antijoin,
    CompiledBackend,
    DomainComplement,
    DomainScan,
    ExecutionContext,
    GroupCount,
    HashJoin,
    NaiveBackend,
    PlanError,
    Project,
    Scan,
    active_backend,
    backend_from_name,
    compile_sentence,
    compile_extension,
    set_backend,
    using_backend,
)
from repro.logic import parse
from repro.logic.syntax import Atom, CountingExists, Exists, Not


def scan_xy():
    return Scan("E", [("var", "x"), ("var", "y")])


class TestPlanOperators:
    def test_scan_binds_variables_and_constants(self):
        db = Database.graph([(0, 1), (1, 2), (0, 0)])
        ctx = ExecutionContext(db)
        assert scan_xy().rows(ctx) == {(0, 1), (1, 2), (0, 0)}
        const_scan = Scan("E", [("const", 0), ("var", "y")])
        assert const_scan.rows(ctx) == {(1,), (0,)}
        loop_scan = Scan("E", [("var", "x"), ("var", "x")])
        assert loop_scan.rows(ctx) == {(0,)}
        assert loop_scan.columns == ("x",)

    def test_scan_restricts_to_domain(self):
        db = Database.graph([(0, 1), (5, 6)])
        ctx = ExecutionContext(db, domain=[0, 1])
        assert scan_xy().rows(ctx) == {(0, 1)}

    def test_hash_join_on_shared_column(self):
        db = Database.graph([(0, 1), (1, 2), (2, 0)])
        ctx = ExecutionContext(db)
        left = scan_xy()
        right = Scan("E", [("var", "y"), ("var", "z")])
        joined = HashJoin(left, right)
        assert joined.columns == ("x", "y", "z")
        assert joined.rows(ctx) == {(0, 1, 2), (1, 2, 0), (2, 0, 1)}

    def test_join_degenerates_to_semijoin(self):
        db = Database.graph([(0, 1), (1, 2)])
        ctx = ExecutionContext(db)
        left = scan_xy()
        right = Scan("E", [("var", "y"), ("const", 2)])
        joined = HashJoin(left, right)
        assert joined.columns == ("x", "y")  # right adds no columns
        assert joined.rows(ctx) == {(0, 1)}

    def test_antijoin(self):
        db = Database.graph([(0, 1), (1, 2), (2, 0)])
        ctx = ExecutionContext(db)
        loops_back = Scan("E", [("var", "y"), ("var", "x")])
        anti = Antijoin(scan_xy(), loops_back)
        # edges (x, y) with no reverse edge: all three (the cycle has none)
        assert anti.rows(ctx) == {(0, 1), (1, 2), (2, 0)}
        db2 = Database.graph([(0, 1), (1, 0), (1, 2)])
        assert anti.rows(ExecutionContext(db2)) == {(1, 2)}

    def test_domain_complement(self):
        db = Database.graph([(0, 1)])
        ctx = ExecutionContext(db)
        complement = DomainComplement(scan_xy())
        assert complement.rows(ctx) == {(0, 0), (1, 0), (1, 1)}

    def test_group_count(self):
        db = Database.graph([(0, 1), (0, 2), (1, 2)])
        ctx = ExecutionContext(db)
        counted = GroupCount(scan_xy(), ("x",), 2)
        assert counted.rows(ctx) == {(0,)}
        assert GroupCount(scan_xy(), ("x",), 3).rows(ctx) == set()

    def test_project_unknown_column_rejected(self):
        with pytest.raises(PlanError):
            Project(scan_xy(), ("nope",))

    def test_explain_renders_tree(self):
        plan = compile_sentence(parse("forall x . ~E(x, x)"))
        rendered = plan.explain()
        assert "Scan E" in rendered
        assert "Complement" in rendered


class TestCompiledShapes:
    """The compiler should produce the efficient operator, not just a correct one."""

    def labels(self, plan):
        result = [plan.label()]
        for child in plan.children():
            result.extend(self.labels(child))
        return result

    def test_negated_conjunct_becomes_antijoin(self):
        formula = Exists("x", Exists("y", ~Atom("E", "y", "x") & Atom("E", "x", "y")))
        labels = " | ".join(self.labels(compile_sentence(formula)))
        assert "Antijoin" in labels
        assert "Complement^2" not in labels

    def test_interpreted_atom_pushed_down_as_selection(self):
        formula = parse("forall x y . E(x, y) -> leq(x, y)", predicates=["leq"])
        labels = " | ".join(self.labels(compile_sentence(formula)))
        assert "Select" in labels

    def test_counting_compiles_to_group_count(self):
        formula = CountingExists("y", 2, Atom("E", "x", "y"))
        labels = self.labels(compile_extension(formula, ("x",)))
        assert any("GroupCount" in l for l in labels)

    def test_plans_are_database_independent(self):
        backend = CompiledBackend()
        formula = parse("forall x . ~E(x, x)")
        for db in (chain(3), cycle(4), Database.graph([])):
            backend.evaluate(formula, db)
        assert backend.cache_stats()["plans"] == 1  # compiled exactly once

    def test_memo_hits_for_repeated_checks(self):
        backend = CompiledBackend()
        formula = parse("forall x . ~E(x, x)")
        db = chain(4)
        assert backend.evaluate(formula, db)
        stats_before = backend.cache_stats()["memo"]
        assert backend.evaluate(formula, db)
        assert backend.cache_stats()["memo"] == stats_before


class TestDatabaseIndexes:
    def test_index_groups_rows_by_key(self):
        db = Database.graph([(0, 1), (0, 2), (1, 2)])
        by_source = db.index("E", 0)
        assert by_source[(0,)] == {(0, 1), (0, 2)}
        assert by_source[(1,)] == {(1, 2)}

    def test_index_accepts_column_tuples(self):
        db = Database.graph([(0, 1), (0, 2)])
        assert db.index("E", (0, 1))[(0, 2)] == {(0, 2)}

    def test_index_is_cached(self):
        db = Database.graph([(0, 1)])
        assert db.index("E", 0) is db.index("E", 0)

    def test_index_rejects_bad_columns(self):
        db = Database.graph([(0, 1)])
        with pytest.raises(DatabaseError):
            db.index("E", 5)
        with pytest.raises(DatabaseError):
            db.index("nope", 0)

    def test_neighbourhood_accessors_match_definition(self):
        db = Database.graph([(0, 1), (0, 2), (2, 0)])
        assert db.successors(0) == {1, 2}
        assert db.predecessors(0) == {2}
        assert db.out_degree(0) == 2
        assert db.in_degree(1) == 1
        assert db.successors(99) == frozenset()

    def test_index_is_read_only(self):
        db = Database.graph([(0, 1)])
        with pytest.raises(TypeError):
            db.index("E", 0)[(9,)] = frozenset()

    def test_delete_where_with_excess_variables_binds_like_zip(self):
        """Variables beyond the relation arity never bind (old zip semantics)."""
        from repro.logic import parse
        from repro.transactions import DeleteWhere, FOProgram

        db = Database.graph([(1, 2), (2, 3)])
        program = FOProgram([DeleteWhere("E", ("a", "b", "c"), parse("E(a, b)"))])
        assert program.apply(db) == Database.graph([])

    def test_canonical_key_cached_and_stable(self):
        db = Database.graph([(0, 1)])
        assert db.canonical_key() is db.canonical_key()
        assert db.canonical_key() == Database.graph([(0, 1)]).canonical_key()


class TestBackendSelection:
    def test_registry_names(self):
        assert isinstance(backend_from_name("naive"), NaiveBackend)
        assert isinstance(backend_from_name("compiled"), CompiledBackend)
        with pytest.raises(ValueError):
            backend_from_name("quantum")

    def test_using_backend_restores_previous(self):
        previous = active_backend()
        with using_backend("naive") as backend:
            assert isinstance(backend, NaiveBackend)
            assert active_backend() is backend
        assert active_backend() is previous

    def test_set_backend_rejects_junk(self):
        with pytest.raises(TypeError):
            set_backend(42)

    def test_one_shot_iterable_domain(self):
        """A generator domain must not be silently exhausted mid-call."""
        from repro.logic.syntax import Exists, Forall, Atom, Not

        db = Database.graph([(0, 1), (1, 2)])
        formula = Forall("x", Exists("y", Atom("E", "x", "y")))
        expected = NaiveBackend().evaluate(formula, db, domain=frozenset(db.active_domain))
        got = CompiledBackend().evaluate(formula, db, domain=iter(db.active_domain))
        assert got == expected is False

    def test_wrong_arity_constant_atom_matches_nothing(self):
        from repro.logic.terms import Const, Var

        db = Database.graph([(0, 1)])
        formula = Atom("E", Var("x"), Var("y"), Const(0))  # arity-3 atom, arity-2 schema
        naive = NaiveBackend().extension(formula, db, ["x", "y"])
        compiled = CompiledBackend().extension(formula, db, ["x", "y"])
        assert compiled == naive == set()

    def test_module_level_evaluate_dispatches(self):
        from repro.logic import evaluate

        db = cycle(3)
        formula = parse("forall x . exists y . E(x, y)")
        with using_backend("naive"):
            naive_answer = evaluate(formula, db)
        with using_backend("compiled"):
            compiled_answer = evaluate(formula, db)
        assert naive_answer == compiled_answer is True
