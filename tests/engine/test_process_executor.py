"""The process-parallel shard executor (``REPRO_SHARD_PROCS``).

Covers the tentpole guarantees end to end against the naive oracle:

* shipped evaluation computes exactly the in-process answers, and really
  does ship (``proc_tasks`` > 0, no silent inline degradation);
* worker state is warm: a re-check after a small change transfers the
  delta, not the database (content-keyed shard state ids);
* unshippable work (closure predicates, unpicklable signatures) falls back
  inline without changing answers;
* a killed worker is respawned and re-attached mid-session — results match
  the oracle and the crash is visible in ``proc_restarts``;
* pool lifecycle: ``close()`` is idempotent and downgrades the backend to
  inline execution instead of breaking it.
"""

from __future__ import annotations

import pytest

from repro.db import Database, Delta, ShardedDatabase, chain, cycle
from repro.db.sharding import ShardStateMachine
from repro.engine import NaiveBackend, ShardedBackend
from repro.logic import EvaluationError, arithmetic_signature, parse

from strategies import graphs, maybe_seed, sentences

from hypothesis import given, settings

ORACLE = NaiveBackend()

TWO_PATH = parse("forall x . forall y . E(x, y) -> (exists z . E(y, z))")
NO_LOOPS = parse("forall x . ~E(x, x)")


@pytest.fixture()
def backend():
    instance = ShardedBackend(shards=2, procs=2)
    yield instance
    instance.close()


class TestShardStateMachine:
    def test_attach_apply_evict(self):
        machine = ShardStateMachine()
        base = Database.graph([(0, 1)])
        machine.attach(0, base, state_id="s0")
        assert machine.shard(0) == base
        assert machine.state_id(0) == "s0"
        delta = Delta(inserted={"E": [(1, 2)]})
        machine.apply(0, delta.to_wire(), state_id="s1")
        assert machine.shard(0) == base.apply_delta(delta)
        assert machine.state_id(0) == "s1"
        assert machine.indexes() == (0,)
        assert machine.sizes() == {0: 2}
        machine.evict(0)
        assert machine.state_id(0) is None

    def test_apply_to_unattached_shard_raises(self):
        from repro.db import DatabaseError

        machine = ShardStateMachine()
        with pytest.raises(DatabaseError):
            machine.apply(3, Delta(inserted={"E": [(0, 1)]}))
        with pytest.raises(DatabaseError):
            machine.shard(3)


class TestShippedEvaluation:
    def test_agrees_with_oracle_and_actually_ships(self, backend):
        db = chain(6)
        assert backend.evaluate(TWO_PATH, db) == ORACLE.evaluate(TWO_PATH, db)
        assert backend.evaluate(NO_LOOPS, db) == ORACLE.evaluate(NO_LOOPS, db)
        formula = parse("E(x, y) & (exists z . E(y, z))")
        assert backend.extension(formula, db, ("x", "y")) == ORACLE.extension(
            formula, db, ("x", "y")
        )
        stats = backend.cache_stats()
        assert stats["proc_workers"] == 2
        assert stats["proc_tasks"] > 0
        assert stats["proc_restarts"] == 0

    @maybe_seed
    @settings(max_examples=20, deadline=None)
    @given(formula=sentences(max_leaves=5), db=graphs())
    def test_property_conformance(self, formula, db):
        # one backend per class of examples would leak pools; a fresh small
        # one per example keeps the crash surface honest and is still fast
        backend = ShardedBackend(shards=2, procs=1)
        try:
            assert backend.evaluate(formula, db) == ORACLE.evaluate(formula, db)
        finally:
            backend.close()

    def test_cold_recheck_reuses_untouched_shard(self, backend):
        db = cycle(8)
        assert backend.evaluate(TWO_PATH, db)
        warm = backend.cache_stats()["proc_tasks"]
        # cold handoff (the E17 regime): same database plus one edge,
        # rebuilt raw — no provenance, so incremental rules cannot engage
        # and only the per-shard content caches can save work
        edges = set(db.relation("E")) | {(3, 6)}
        db2 = Database.graph(edges)
        assert backend.evaluate(TWO_PATH, db2) == ORACLE.evaluate(TWO_PATH, db2)
        stats = backend.cache_stats()
        # the re-check dispatched work, but the untouched shard's partials
        # were coordinator cache hits (content-keyed shard interning)
        assert stats["proc_tasks"] > warm
        assert stats["proc_fallbacks"] == 0
        assert stats["shard_hits"] > 0
        assert set(stats["shard_hits_by_shard"]) <= {0, 1}

    def test_raising_evaluation_does_not_desync_the_pipes(self, backend):
        # regression: a worker replying ("err", ...) triggers an inline
        # fallback whose exception used to propagate while other replies
        # were still in flight, shifting every later reply by one and
        # corrupting the next batch's protocol framing
        db = cycle(6)
        assert backend.evaluate(TWO_PATH, db)
        with pytest.raises(EvaluationError):
            backend.evaluate(parse("R(x, x) & (exists z . R(x, z))"), db)
        # the pool must keep answering correctly after the failure
        for formula in (TWO_PATH, NO_LOOPS):
            assert backend.evaluate(formula, db) == ORACLE.evaluate(formula, db)
        stats = backend.cache_stats()
        assert stats["proc_restarts"] == 0

    def test_unpicklable_signature_falls_back_inline(self, backend):
        signature = arithmetic_signature()
        formula = parse("forall x . forall y . E(x, y) -> leq(x, y)",
                        predicates=["leq"])
        db = chain(5)
        assert backend.evaluate(formula, db, signature=signature) == (
            ORACLE.evaluate(formula, db, signature=signature)
        )
        stats = backend.cache_stats()
        assert stats["proc_fallbacks"] > 0
        assert stats["proc_restarts"] == 0


class TestCrashRecovery:
    def test_killed_worker_is_respawned(self, backend):
        db = chain(6)
        assert backend.evaluate(TWO_PATH, db) == ORACLE.evaluate(TWO_PATH, db)
        backend._executor._workers[0].process.kill()
        backend._executor._workers[0].process.join()
        # a fresh database forces real dispatch into the dead worker
        db2 = Database.graph([(0, 1), (1, 2), (2, 0), (3, 3)])
        for formula in (TWO_PATH, NO_LOOPS):
            assert backend.evaluate(formula, db2) == ORACLE.evaluate(formula, db2)
        stats = backend.cache_stats()
        assert stats["proc_restarts"] >= 1 or stats["proc_fallbacks"] > 0
        assert stats["proc_workers"] == 2
        # and the pool keeps serving afterwards
        db3 = db2.apply_delta(Delta(deleted={"E": [(3, 3)]}))
        assert backend.evaluate(NO_LOOPS, db3) == ORACLE.evaluate(NO_LOOPS, db3)


class TestLifecycle:
    def test_close_is_idempotent_and_degrades_inline(self):
        backend = ShardedBackend(shards=2, procs=2)
        db = chain(4)
        expected = ORACLE.evaluate(TWO_PATH, db)
        assert backend.evaluate(TWO_PATH, db) == expected
        backend.close()
        backend.close()
        assert backend._executor is None
        # evaluation still works — per-shard dispatch runs inline
        assert backend.evaluate(TWO_PATH, chain(5)) == ORACLE.evaluate(
            TWO_PATH, chain(5)
        )

    def test_procs_env_knob(self, monkeypatch):
        from repro.engine.parallel import PROCS_ENV

        monkeypatch.setenv(PROCS_ENV, "2")
        backend = ShardedBackend(shards=2)
        try:
            assert backend.procs == 2
            assert backend._executor.kind == "procs"
        finally:
            backend.close()
        # an invalid value warns (like REPRO_SHARDS) instead of silently
        # staying on threads — the operator asked for processes and must
        # hear that the knob was dropped
        monkeypatch.setenv(PROCS_ENV, "not-a-number")
        with pytest.warns(RuntimeWarning, match="REPRO_SHARD_PROCS"):
            fallback = ShardedBackend(shards=2)
        try:
            assert fallback.procs == 0
            assert fallback._executor.kind == "threads"
        finally:
            fallback.close()

    def test_pool_threads_env_knob_warns_on_garbage(self, monkeypatch):
        import os

        from repro.engine.parallel import POOL_ENV, _pool_threads_from_env

        default = min(8, os.cpu_count() or 1)
        monkeypatch.setenv(POOL_ENV, "3")
        assert _pool_threads_from_env(8) == 3
        monkeypatch.setenv(POOL_ENV, "many")
        with pytest.warns(RuntimeWarning, match="REPRO_SHARD_THREADS"):
            assert _pool_threads_from_env(8) == default
        monkeypatch.delenv(POOL_ENV)
        assert _pool_threads_from_env(8) == default

    def test_single_shard_never_spawns_processes(self):
        backend = ShardedBackend(shards=1, procs=4)
        try:
            assert backend._executor.kind != "procs"
            db = chain(4)
            assert backend.evaluate(TWO_PATH, db) == ORACLE.evaluate(TWO_PATH, db)
        finally:
            backend.close()


class TestServiceIntegration:
    def test_build_service_owns_process_backend(self):
        from repro.service import build_service, build_streams, run_workload
        from repro.service.workloads import forward_graph

        initial = forward_graph(30, 3, seed=5)
        service = build_service(initial, shards=2, procs=2)
        try:
            assert service.backend.num_shards == 2
            streams = build_streams("mixed", 2, 8, 30, seed=1)
            report = run_workload(service, streams, workers=2)
            assert report.committed > 0
            assert service.invariant_holds()
        finally:
            service.close()
        service.close()  # idempotent
        assert service.backend._executor is None
