"""Property-based equivalence: ``CompiledBackend`` ≡ ``NaiveBackend``.

The compiled engine must agree with the recursive interpreter — the semantics
oracle — on *every* formula of the specification languages and every
database.  Hypothesis generates random formulas (all connectives, both
quantifiers, counting quantifiers, equalities, constants inside and outside
the active domain) crossed with random graph databases, and the suite asserts
that sentences evaluate identically and open formulas have identical
extensions, under both the default active-domain semantics and explicitly
enlarged/shrunk quantification domains.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.db import Database, chain, cycle, random_graph
from repro.engine import CompiledBackend, NaiveBackend
from repro.logic import arithmetic_signature, parse
from repro.logic.syntax import (
    Atom,
    BOTTOM,
    CountingExists,
    Eq,
    Exists,
    Forall,
    Or,
    TOP,
)

# the grammar-based generators are shared with the conformance and property
# suites — see tests/strategies.py
from strategies import CONSTANTS, VARIABLES, formulas, graphs

NAIVE = NaiveBackend()
COMPILED = CompiledBackend()


COMMON_SETTINGS = settings(
    max_examples=120,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@COMMON_SETTINGS
@given(formula=formulas(), db=graphs())
def test_extensions_agree(formula, db):
    variables = sorted(formula.free_variables())
    naive = NAIVE.extension(formula, db, variables)
    compiled = COMPILED.extension(formula, db, variables)
    assert compiled == naive, f"extension mismatch for {formula} on {db}"


@COMMON_SETTINGS
@given(formula=formulas(), db=graphs())
def test_sentence_evaluation_agrees(formula, db):
    closed = formula
    for variable in sorted(formula.free_variables()):
        closed = Exists(variable, closed)
    assert COMPILED.evaluate(closed, db) == NAIVE.evaluate(closed, db)


@COMMON_SETTINGS
@given(formula=formulas(), db=graphs())
def test_extensions_agree_on_extra_variables(formula, db):
    """Variables beyond the free ones range over the domain in both backends."""
    variables = sorted(set(VARIABLES) | formula.free_variables())
    naive = NAIVE.extension(formula, db, variables)
    compiled = COMPILED.extension(formula, db, variables)
    assert compiled == naive


@COMMON_SETTINGS
@given(formula=formulas(), db=graphs(), extra=st.frozensets(st.integers(10, 13), max_size=3))
def test_custom_enlarged_domain_agrees(formula, db, extra):
    """Gamma(D)-style quantification domains larger than the active domain."""
    domain = db.active_domain | extra
    variables = sorted(formula.free_variables())
    naive = NAIVE.extension(formula, db, variables, domain=domain)
    compiled = COMPILED.extension(formula, db, variables, domain=domain)
    assert compiled == naive


@COMMON_SETTINGS
@given(formula=formulas(), db=graphs())
def test_shrunk_domain_agrees(formula, db):
    """Quantification restricted to a subset of the active domain."""
    domain = frozenset(v for v in db.active_domain if isinstance(v, int) and v % 2 == 0)
    variables = sorted(formula.free_variables())
    naive = NAIVE.extension(formula, db, variables, domain=domain)
    compiled = COMPILED.extension(formula, db, variables, domain=domain)
    assert compiled == naive


@COMMON_SETTINGS
@given(db=graphs(), value=st.sampled_from(CONSTANTS), threshold=st.integers(0, 4))
def test_counting_with_constants(db, value, threshold):
    """Counting quantifiers whose bodies mention (possibly inactive) constants."""
    from repro.logic.terms import Const

    formula = CountingExists("y", threshold, Or(Atom("E", "x", "y"), Eq("y", Const(value))))
    naive = NAIVE.extension(formula, db, ["x"])
    compiled = COMPILED.extension(formula, db, ["x"])
    assert compiled == naive


class TestInterpretedSignatures:
    """FOc(Omega): interpreted predicates and function terms."""

    SIGNATURE = arithmetic_signature()

    @COMMON_SETTINGS
    @given(db=graphs())
    def test_interpreted_predicate_pushdown(self, db):
        formula = parse(
            "forall x y . E(x, y) -> leq(x, y)", predicates=["leq"]
        )
        assert COMPILED.evaluate(formula, db, signature=self.SIGNATURE) == NAIVE.evaluate(
            formula, db, signature=self.SIGNATURE
        )

    @COMMON_SETTINGS
    @given(db=graphs())
    def test_function_terms_in_atoms(self, db):
        formula = parse("exists x . E(x, succ(x))", functions=["succ"])
        assert COMPILED.evaluate(formula, db, signature=self.SIGNATURE) == NAIVE.evaluate(
            formula, db, signature=self.SIGNATURE
        )

    @COMMON_SETTINGS
    @given(db=graphs())
    def test_function_terms_in_equalities(self, db):
        formula = parse(
            "exists x . exists y . E(x, y) & plus(x, 1) = y", functions=["plus"]
        )
        assert COMPILED.evaluate(formula, db, signature=self.SIGNATURE) == NAIVE.evaluate(
            formula, db, signature=self.SIGNATURE
        )


class TestDeterministicCorners:
    """Hand-picked corners the random sweep might visit rarely."""

    def check(self, formula, db, variables=None, domain=None):
        variables = sorted(formula.free_variables()) if variables is None else variables
        naive = NAIVE.extension(formula, db, variables, domain=domain)
        compiled = COMPILED.extension(formula, db, variables, domain=domain)
        assert compiled == naive

    def test_empty_database(self):
        empty = Database.graph([])
        self.check(parse("forall x . E(x, x)"), empty)          # vacuously true
        self.check(parse("exists x . x = x"), empty)            # false: no witness
        self.check(CountingExists("x", 0, BOTTOM), empty)       # >=0: vacuously true

    def test_constants_outside_active_domain(self):
        db = chain(3)
        self.check(parse("E(0, 1) & ~E(99, 100)"), db)
        self.check(parse("exists x . x = 99"), db)              # 99 inactive: false
        self.check(Eq("x", 99), db)                             # empty extension
        self.check(parse("forall x . ~(x = 99)"), db)           # true

    def test_vacuous_quantifier_needs_witness(self):
        empty = Database.graph([])
        db = cycle(2)
        vacuous = Exists("x", TOP)
        assert not COMPILED.evaluate(vacuous, empty)
        assert COMPILED.evaluate(vacuous, db)
        assert COMPILED.evaluate(Forall("x", BOTTOM), empty)    # empty domain
        assert not COMPILED.evaluate(Forall("x", BOTTOM), db)

    def test_counting_exact_thresholds(self):
        db = Database.graph([(0, 1), (0, 2), (0, 3), (1, 2)])
        for k in range(5):
            self.check(CountingExists("y", k, Atom("E", "x", "y")), db)

    def test_deep_alternation(self):
        db = random_graph(5, 0.4, seed=13)
        formula = parse("forall x . exists y . forall z . E(x, y) -> (E(y, z) -> E(x, z))")
        assert COMPILED.evaluate(formula, db) == NAIVE.evaluate(formula, db)

    def test_assignment_outside_domain_falls_back(self):
        db = chain(3)
        formula = parse("~E(x, x)")
        # 99 is not in the active domain; the naive path must be taken and agree
        assert COMPILED.evaluate(formula, db, {"x": 99}) == NAIVE.evaluate(
            formula, db, {"x": 99}
        )

    def test_memo_returns_fresh_sets(self):
        db = cycle(3)
        formula = parse("E(x, y)")
        first = COMPILED.extension(formula, db, ["x", "y"])
        first.add(("junk", "junk"))
        second = COMPILED.extension(formula, db, ["x", "y"])
        assert ("junk", "junk") not in second
