"""The plan wire codec: ``plan_to_spec``/``spec_to_plan`` round trips.

The process executor never pickles plan objects — it ships the compact spec
and rebuilds the plan worker-side, re-deriving ``Select`` predicates from
their formulas.  These properties pin the codec's contract:

* **spec identity**: ``plan -> spec -> plan -> spec`` is a fixed point, so
  coordinator and worker agree on node identities (the spec IS the cache
  key material);
* **evaluation equality**: a decoded plan computes exactly the rows of the
  original on arbitrary databases — shipping a plan never changes answers;
* **picklability**: the spec survives ``pickle`` (the actual transport).
"""

from __future__ import annotations

import pickle

import pytest
from hypothesis import given, settings

from repro.db import Database, chain
from repro.engine import ExecutionContext, compile_extension, compile_sentence
from repro.engine.codec import (
    PlanCodecError,
    decode_plan,
    encode_plan,
    plan_to_spec,
    spec_to_plan,
)
from repro.engine.plan import Scan, Select

from strategies import formulas, graphs, maybe_seed, sentences


def compiled_plans(formula):
    """Every plan the compiler produces for ``formula``."""
    free = sorted(formula.free_variables())
    if free:
        return [compile_extension(formula, free)]
    return [compile_sentence(formula)]


@maybe_seed
@given(formula=formulas(max_leaves=6))
def test_spec_round_trip_is_identity(formula):
    for plan in compiled_plans(formula):
        spec = plan_to_spec(plan)
        rebuilt = spec_to_plan(spec)
        assert plan_to_spec(rebuilt) == spec
        assert rebuilt.columns == plan.columns


@maybe_seed
@given(formula=formulas(max_leaves=6), db=graphs())
def test_decoded_plan_evaluates_identically(formula, db):
    for plan in compiled_plans(formula):
        rebuilt = spec_to_plan(plan_to_spec(plan))
        assert rebuilt.rows(ExecutionContext(db)) == plan.rows(
            ExecutionContext(db)
        )


@maybe_seed
@given(formula=sentences(max_leaves=6), db=graphs())
def test_spec_survives_pickle(formula, db):
    plan = compile_sentence(formula)
    spec = plan_to_spec(plan)
    shipped = pickle.loads(pickle.dumps(spec))
    assert shipped == spec
    rebuilt = spec_to_plan(shipped)
    assert rebuilt.rows(ExecutionContext(db)) == plan.rows(ExecutionContext(db))


def test_encode_exposes_stable_node_ids():
    plan = compile_sentence(
        __import__("repro.logic", fromlist=["parse"]).parse(
            "forall x . forall y . E(x, y) -> (exists z . E(y, z))"
        )
    )
    spec, node_ids = encode_plan(plan)
    root, table = decode_plan(spec)
    assert len(table) == len(node_ids)
    # ids are table indices: the encoder and decoder enumerate identically
    for node, node_id in node_ids.items():
        assert type(table[node_id]) is type(node)


def test_select_without_formula_is_unshippable():
    base = Scan("E", [("var", "x"), ("var", "y")])
    opaque = Select(base, lambda row: True, description="opaque closure")
    with pytest.raises(PlanCodecError):
        plan_to_spec(opaque)


def test_bad_spec_version_rejected():
    plan = compile_sentence(
        __import__("repro.logic", fromlist=["parse"]).parse("exists x . E(x, x)")
    )
    version, nodes, root = plan_to_spec(plan)
    with pytest.raises(PlanCodecError):
        spec_to_plan(("plan/0", nodes, root))


def test_decoded_select_predicate_matches_original():
    """Predicates are re-derived from formulas, not shipped as closures."""
    parse = __import__("repro.logic", fromlist=["parse"]).parse
    formula = parse("forall x . forall y . E(x, y) -> x = y -> E(y, x)")
    plan = compile_sentence(formula)
    rebuilt = spec_to_plan(plan_to_spec(plan))
    for db in (chain(4), Database.graph([(0, 0), (1, 1), (2, 1)])):
        assert rebuilt.rows(ExecutionContext(db)) == plan.rows(
            ExecutionContext(db)
        )
