"""The process-pool circuit breaker: crash loops degrade, cool-downs recover.

The acceptance scenario: a worker slot whose process keeps dying — killed
five times in a row without a healthy reply in between — trips its breaker.
The trip is observable (WARNING log + ``executor.breaker_trips`` metric),
the backend keeps answering correctly via inline degradation while the
breaker is open, and after the cool-down a half-open probe respawns the
worker and a healthy reply closes the breaker again.
"""

from __future__ import annotations

import logging
import time

import pytest

from repro import faults
from repro.db import Database, chain
from repro.engine import NaiveBackend, ShardedBackend
from repro.engine.executors import (
    BREAKER_COOLDOWN_ENV,
    BREAKER_THRESHOLD_ENV,
    DEFAULT_BREAKER_COOLDOWN,
    DEFAULT_BREAKER_THRESHOLD,
    ProcessShardExecutor,
    _Breaker,
)
from repro.logic import parse

ORACLE = NaiveBackend()
NO_LOOPS = parse("forall x . ~E(x, x)")


@pytest.fixture(autouse=True)
def clean_hooks():
    faults.uninstall()
    yield
    faults.uninstall()


def fresh_graph(round_no: int) -> Database:
    # distinct content each round so the content-keyed caches cannot absorb
    # the dispatch — every evaluation must actually reach the pool
    return Database.graph([(i, i + 1 + round_no) for i in range(5)])


class TestBreakerUnit:
    def test_trips_at_threshold_and_only_counts_the_transition(self):
        breaker = _Breaker(threshold=3, cooldown=60.0)
        assert breaker.record_failure() is False
        assert breaker.record_failure() is False
        assert breaker.state == "closed"
        assert breaker.record_failure() is True  # the trip
        assert breaker.state == "open"
        assert breaker.trips == 1
        assert breaker.record_failure() is False  # already open: no re-trip
        assert breaker.trips == 1

    def test_open_blocks_respawn_until_cooldown(self):
        breaker = _Breaker(threshold=1, cooldown=0.05)
        breaker.record_failure()
        assert breaker.allows_respawn() is False
        time.sleep(0.06)
        assert breaker.state == "half-open"
        assert breaker.allows_respawn() is True  # the single probe
        # the probe re-armed the clock: no hot-loop of respawns
        assert breaker.allows_respawn() is False

    def test_success_closes_and_resets(self):
        breaker = _Breaker(threshold=2, cooldown=0.01)
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == "open"
        breaker.record_success()
        assert breaker.state == "closed"
        assert breaker.failures == 0
        assert breaker.allows_respawn() is True

    def test_env_knobs(self, monkeypatch):
        monkeypatch.setenv(BREAKER_THRESHOLD_ENV, "2")
        monkeypatch.setenv(BREAKER_COOLDOWN_ENV, "0.5")
        executor = ProcessShardExecutor(num_shards=2, procs=1)
        try:
            assert executor._breakers[0].threshold == 2
            assert executor._breakers[0].cooldown == 0.5
        finally:
            executor.close()
        monkeypatch.setenv(BREAKER_THRESHOLD_ENV, "lots")
        monkeypatch.delenv(BREAKER_COOLDOWN_ENV)
        with pytest.warns(RuntimeWarning, match=BREAKER_THRESHOLD_ENV):
            fallback = ProcessShardExecutor(num_shards=2, procs=1)
        try:
            assert fallback._breakers[0].threshold == DEFAULT_BREAKER_THRESHOLD
            assert fallback._breakers[0].cooldown == DEFAULT_BREAKER_COOLDOWN
        finally:
            fallback.close()


class TestCrashLoop:
    def test_five_kills_trip_degrade_and_recover(self, caplog):
        backend = ShardedBackend(shards=2, procs=2)
        try:
            executor = backend._executor
            # short cool-down so the test can watch the full open -> probe
            # -> closed cycle without waiting out the production default
            for breaker in executor._breakers:
                breaker.cooldown = 0.3
            db = chain(6)
            assert backend.evaluate(NO_LOOPS, db) == ORACLE.evaluate(NO_LOOPS, db)
            assert executor.stats()["proc_breaker_trips"] == 0

            # every dispatch finds its worker dead: a crash loop with no
            # healthy reply in between, so the death count never resets
            faults.install(faults.FaultPlan().site("executor.crash"))
            with caplog.at_level(logging.WARNING, logger="repro.engine.executors"):
                for round_no in range(DEFAULT_BREAKER_THRESHOLD * 3):
                    current = fresh_graph(round_no)
                    assert backend.evaluate(NO_LOOPS, current) == (
                        ORACLE.evaluate(NO_LOOPS, current)
                    ), "degraded inline answers must stay correct"
                    if executor.stats()["proc_breaker_trips"] >= 1:
                        break
            stats = executor.stats()
            assert stats["proc_breaker_trips"] >= 1, "breaker never tripped"
            assert "circuit breaker OPEN" in caplog.text
            assert "open" in stats["proc_breaker_states"]

            # while open: still correct, served inline, no respawn churn
            restarts_when_open = executor.restarts
            degraded = fresh_graph(97)
            assert backend.evaluate(NO_LOOPS, degraded) == (
                ORACLE.evaluate(NO_LOOPS, degraded)
            )

            # cool-down passes with the fault gone: the half-open probe
            # respawns the worker and its healthy reply closes the breaker
            faults.uninstall()
            time.sleep(0.35)
            recovered = fresh_graph(98)
            assert backend.evaluate(NO_LOOPS, recovered) == (
                ORACLE.evaluate(NO_LOOPS, recovered)
            )
            stats = executor.stats()
            assert "closed" in stats["proc_breaker_states"]
            assert executor.restarts > restarts_when_open  # the probe ran
        finally:
            backend.close()

    def test_respawn_failures_also_trip(self, caplog):
        backend = ShardedBackend(shards=2, procs=2)
        try:
            executor = backend._executor
            for breaker in executor._breakers:
                breaker.threshold = 2
                breaker.cooldown = 60.0
            db = chain(6)
            assert backend.evaluate(NO_LOOPS, db) == ORACLE.evaluate(NO_LOOPS, db)
            for worker in executor._workers:
                worker.process.kill()
                worker.process.join()
            # every respawn attempt dies on the spot
            faults.install(faults.FaultPlan().site("executor.spawn", exc="oserror"))
            with caplog.at_level(logging.WARNING, logger="repro.engine.executors"):
                for round_no in range(6):
                    current = fresh_graph(round_no)
                    assert backend.evaluate(NO_LOOPS, current) == (
                        ORACLE.evaluate(NO_LOOPS, current)
                    )
                    if executor.stats()["proc_breaker_trips"] >= 1:
                        break
            assert executor.stats()["proc_breaker_trips"] >= 1
            assert "circuit breaker OPEN" in caplog.text
        finally:
            faults.uninstall()
            backend.close()
