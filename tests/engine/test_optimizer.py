"""The cost-based optimizer: statistics, estimation, rewriting, sharing.

Four layers of coverage:

* **statistics** — `Database.stats()` agrees with ground truth and stays
  exact through ``apply_delta`` (the O(|Δ|) maintenance path);
* **estimator properties** (hypothesis) — estimated cardinalities of scans
  and joins against true sizes on generated databases: scans with at most
  one constant are *exact* (the per-column counters are complete), joins are
  bounded by the cross product and never negative;
* **rewriter** — optimized plans compute exactly the rows of the syntactic
  plans on random formula/database pairs, join reordering starts selective
  scans first (the E12/E18 plan-shape regression), complement avoidance
  produces antijoins, the cheap-plan fallback refuses plans costed worse
  than the interpreter;
* **sharing and explain** — structurally equal sub-plans across separately
  optimized constraints unify to one node, shared intermediates are
  materialised once per database, and ``explain()`` reports estimates
  against actuals.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.db import Database, Delta, random_graph
from repro.engine import (
    Antijoin,
    CompiledBackend,
    DomainComplement,
    DomainProduct,
    Estimator,
    HashJoin,
    NaiveBackend,
    OptimizerParams,
    Plan,
    Project,
    Scan,
    ShardedBackend,
    canonical_plan,
    compile_extension,
    estimate_naive_cost,
    optimize_plan,
)
from repro.engine.plan import ExecutionContext
from repro.logic import parse

from strategies import formulas, graphs, maybe_seed

COMMON = settings(max_examples=60, deadline=None)


def plan_nodes(plan: Plan):
    seen = []
    stack = [plan]
    while stack:
        node = stack.pop()
        if any(node is s for s in seen):
            continue
        seen.append(node)
        stack.extend(node.children())
    return seen


# ---------------------------------------------------------------------------
# statistics
# ---------------------------------------------------------------------------

class TestStats:
    def test_stats_match_ground_truth(self):
        db = Database.graph([(0, 1), (0, 2), (1, 2), (2, 2)])
        rel = db.stats().relation("E")
        assert rel.cardinality == 4
        assert rel.column(0).distinct == 3
        assert rel.column(0).frequency(0) == 2
        assert rel.column(1).frequency(2) == 3
        assert rel.column(1).most_common(1)[0] == (2, 3)

    def test_stats_patch_through_apply_delta(self):
        db = Database.graph([(0, 1), (1, 2)])
        base_stats = db.stats()  # materialise so apply_delta patches forward
        successor = db.apply_delta(
            Delta(inserted={"E": [(2, 3), (3, 3)]}, deleted={"E": [(0, 1)]})
        )
        patched = successor.stats()
        rebuilt = Database.graph([(1, 2), (2, 3), (3, 3)]).stats()
        assert patched.relation("E").cardinality == 3
        for position in (0, 1):
            assert (
                patched.relation("E").column(position).counts
                == rebuilt.relation("E").column(position).counts
            )
        # the parent's statistics object is untouched (clone-and-patch)
        assert base_stats.relation("E").cardinality == 2

    @maybe_seed
    @COMMON
    @given(db=graphs(max_value=5, max_edges=14))
    def test_stats_profile_is_stable_under_equality(self, db):
        assert db.stats().profile() == Database.graph(db.edges).stats().profile()


# ---------------------------------------------------------------------------
# the cardinality estimator (property suite)
# ---------------------------------------------------------------------------

class TestEstimator:
    @maybe_seed
    @COMMON
    @given(
        db=graphs(max_value=5, max_edges=16),
        constant=st.integers(0, 5),
        flip=st.booleans(),
    )
    def test_constant_scan_estimates_are_exact(self, db, constant, flip):
        """One constant position: the complete counters make this exact."""
        pattern = (
            [("const", constant), ("var", "y")]
            if flip
            else [("var", "x"), ("const", constant)]
        )
        scan = Scan("E", pattern)
        estimator = Estimator(db.stats(), len(db.active_domain))
        true_rows = len(scan.rows(ExecutionContext(db)))
        assert estimator.estimate(scan).rows == pytest.approx(true_rows)

    @maybe_seed
    @COMMON
    @given(db=graphs(max_value=5, max_edges=16))
    def test_full_scan_estimates_are_exact(self, db):
        scan = Scan("E", [("var", "x"), ("var", "y")])
        estimator = Estimator(db.stats(), len(db.active_domain))
        assert estimator.estimate(scan).rows == pytest.approx(len(db.edges))

    @maybe_seed
    @COMMON
    @given(db=graphs(max_value=5, max_edges=16))
    def test_join_estimates_are_bounded(self, db):
        """Join estimates stay within [0, |L| * |R|] and track the truth.

        The classic distinct-value model cannot be exact, so the property is
        a *bound*: never negative, never above the cross product, and at
        most the cross-product bound even after projection.
        """
        left = Scan("E", [("var", "x"), ("var", "y")])
        right = Scan("E", [("var", "y"), ("var", "z")])
        join = HashJoin(left, right)
        estimator = Estimator(db.stats(), len(db.active_domain))
        estimate = estimator.estimate(join).rows
        edges = len(db.edges)
        assert 0.0 <= estimate <= edges * edges + 1e-9
        if edges:
            true_rows = len(join.rows(ExecutionContext(db)))
            bound = max(len(db.active_domain), 1)
            # the estimator never *undershoots* by more than a |domain|
            # factor; overshooting is only bounded when the join is
            # non-empty (no statistics can see that two value sets are
            # disjoint without storing them)
            assert true_rows <= estimate * bound + bound + 1e-9
            if true_rows:
                assert estimate <= true_rows * bound + bound + 1e-9

    @maybe_seed
    @COMMON
    @given(db=graphs(max_value=4, max_edges=10), width=st.integers(0, 2))
    def test_domain_product_estimates_are_exact(self, db, width):
        columns = tuple("xyz"[:width])
        product = DomainProduct(columns)
        estimator = Estimator(db.stats(), len(db.active_domain))
        # the estimator clamps the domain size at 1 (cost ratios stay finite
        # on empty databases), so the expectation clamps too
        assert estimator.estimate(product).rows == pytest.approx(
            max(len(db.active_domain), 1) ** width
        )

    def test_naive_cost_scales_with_quantifier_depth(self):
        shallow = parse("exists x . E(x, x)")
        deep = parse("forall x . exists y . forall z . E(x, y) -> E(y, z)")
        assert estimate_naive_cost(deep, (), 10) > estimate_naive_cost(
            shallow, (), 10
        )


# ---------------------------------------------------------------------------
# the rewriter
# ---------------------------------------------------------------------------

class TestRewriter:
    @maybe_seed
    @settings(max_examples=80, deadline=None)
    @given(formula=formulas(), db=graphs())
    def test_optimized_plans_are_equivalent(self, formula, db):
        variables = tuple(sorted(formula.free_variables()))
        plan = compile_extension(formula, variables)
        optimized, _info = optimize_plan(plan, db.stats(), len(db.active_domain))
        assert optimized.columns == plan.columns
        assert optimized.rows(ExecutionContext(db)) == plan.rows(ExecutionContext(db))

    def test_join_reordering_starts_with_the_selective_scan(self):
        """The E12/E18 plan-shape pin: the chain query joins outward from
        the tiny relation instead of materialising the big self-join."""
        db = random_graph(24, 0.5, seed=3)
        # E(z, 0) is selective (one bound constant); the syntactic order
        # would join E(x,y) with E(y,z) first
        formula = parse("exists y . E(x, y) & E(y, z) & E(z, 0)")
        plan = compile_extension(formula, ("x", "z"))
        optimized, info = optimize_plan(plan, db.stats(), len(db.active_domain))
        assert info.rewritten and info.join_reorders >= 1
        joins = [n for n in plan_nodes(optimized) if isinstance(n, HashJoin)]
        assert joins, "reordered plan lost its joins"
        estimator = Estimator(db.stats(), len(db.active_domain))
        all_scans = [n for n in plan_nodes(optimized) if isinstance(n, Scan)]
        selective = min(all_scans, key=lambda s: estimator.estimate(s).rows)
        # the most selective scan participates in the innermost join — the
        # syntactic order would have joined the two full scans first
        innermost = min(joins, key=lambda j: len(plan_nodes(j)))
        assert any(
            node is selective for node in plan_nodes(innermost)
        ), f"selective scan not joined first:\n{optimized.explain()}"

    def test_complement_avoidance_produces_antijoin(self):
        db = random_graph(18, 0.3, seed=5)
        formula = parse("exists y . E(x, y) & ~E(y, x)")
        plan = compile_extension(formula, ("x",))
        optimized, _info = optimize_plan(plan, db.stats(), len(db.active_domain))
        kinds = {type(n) for n in plan_nodes(optimized)}
        assert DomainComplement not in kinds
        assert Antijoin in kinds
        assert optimized.rows(ExecutionContext(db)) == plan.rows(ExecutionContext(db))

    def test_rewrite_only_when_cheaper(self):
        db = Database.graph([(0, 1)])
        formula = parse("exists x . exists y . E(x, y)")
        plan = compile_extension(formula, ())
        optimized, info = optimize_plan(plan, db.stats(), len(db.active_domain))
        assert info.optimized_cost <= info.original_cost
        if not info.rewritten:
            assert optimized is plan

    def test_sharded_params_prefer_co_partitioned_orders(self):
        """The partition-aware cost model prices a co-partitioned join
        below the same join under broadcast."""
        db = random_graph(30, 0.4, seed=9)
        left = Scan("E", [("var", "a"), ("var", "b")])
        right_co = Scan("E", [("var", "a"), ("var", "c")])   # shares the partition col
        right_bc = Scan("E", [("var", "b"), ("var", "c")])   # join key off-partition
        sharded = OptimizerParams(num_shards=4)
        estimator = Estimator(db.stats(), len(db.active_domain), params=sharded)
        co_cost = estimator.op_cost(HashJoin(left, right_co))
        bc_cost = estimator.op_cost(HashJoin(left, right_bc))
        assert co_cost < bc_cost


# ---------------------------------------------------------------------------
# the backend integration: fallback, sharing, explain, counters
# ---------------------------------------------------------------------------

class TestBackendIntegration:
    def test_cheap_plan_fallback_on_interpreted_heavy_formula(self):
        """A formula whose plan is all domain products on a small database
        goes to the interpreter — and the answer stays right."""
        from repro.logic import arithmetic_signature

        backend = CompiledBackend(optimizer="on")
        db = random_graph(30, 0.4, seed=11)
        signature = arithmetic_signature()
        formula = parse(
            "forall x . forall y . forall z . (E(x, y) & E(y, z)) -> "
            "(leq(x, z) | leq(z, x))",
            predicates=["leq"],
        )
        expected = NaiveBackend().evaluate(formula, db, signature=signature)
        assert backend.evaluate(formula, db, signature=signature) == expected

    def test_naive_wins_counter_and_memo(self):
        backend = CompiledBackend(optimizer="on")
        db = random_graph(16, 0.4, seed=2)
        # quantifier-heavy with an opaque guard: plans cost more than the
        # interpreter on this size
        from repro.logic import arithmetic_signature

        formula = parse(
            "forall x . forall y . E(x, y) -> (leq(x, y) | leq(y, x))",
            predicates=["leq"],
        )
        signature = arithmetic_signature()
        first = backend.evaluate(formula, db, signature=signature)
        second = backend.evaluate(formula, db, signature=signature)
        assert first == second
        stats = backend.cache_stats()
        for counter in (
            "plans_rewritten", "join_reorders", "shared_subplans",
            "complements_avoided", "naive_wins", "estimation_error",
        ):
            assert counter in stats

    def test_shared_subplans_across_constraints(self):
        backend = CompiledBackend(optimizer="on")
        # large enough (>= _OPT_EAGER_ROWS rows) that optimization is eager
        # rather than request-counted
        db = random_graph(60, 0.4, seed=7)
        premise = "(exists y . exists z . E(a, y) & E(y, z) & E(z, 0))"
        one = parse(f"forall a . {premise} -> (exists w . E(a, w))")
        two = parse(f"forall a . {premise} -> (exists w . E(w, a))")
        backend.evaluate(one, db)
        before = backend.cache_stats()["shared_subplans"]
        backend.evaluate(two, db)
        after = backend.cache_stats()["shared_subplans"]
        assert after > before, "structurally shared premise was not detected"

    def test_evaluate_many_matches_sequential(self):
        backend = CompiledBackend(optimizer="on")
        db = random_graph(14, 0.4, seed=8)
        sentences = [
            parse("forall x . ~E(x, x)"),
            parse("forall x . forall y . E(x, y) -> (exists z . E(y, z))"),
            parse("exists x . exists y . E(x, y) & E(y, x)"),
        ]
        batched = backend.evaluate_many(sentences, db)
        oracle = NaiveBackend()
        assert batched == tuple(oracle.evaluate(s, db) for s in sentences)

    def test_explain_reports_estimates_and_actuals(self):
        backend = CompiledBackend(optimizer="on")
        db = random_graph(20, 0.3, seed=4)
        report = backend.explain(
            parse("exists y . E(x, y) & E(y, z) & E(z, 0)"), db, ("x", "z")
        )
        assert "est=" in report and "act=" in report
        assert "chosen:" in report

    def test_explain_mode_tracks_estimation_error(self):
        backend = CompiledBackend(optimizer="explain")
        db = random_graph(18, 0.4, seed=6)
        backend.extension(parse("E(x, y)"), db, ("x", "y"))
        assert backend.cache_stats()["estimation_checks"] >= 1

    def test_optimizer_off_disables_rewrites(self):
        backend = CompiledBackend(optimizer="off")
        db = random_graph(20, 0.4, seed=10)
        backend.extension(
            parse("exists y . E(x, y) & E(y, z) & E(z, 0)"), db, ("x", "z")
        )
        stats = backend.cache_stats()
        assert stats["plans_rewritten"] == 0
        assert stats["optimized_plans"] == 0

    def test_invalid_optimizer_mode_rejected(self):
        with pytest.raises(ValueError):
            CompiledBackend(optimizer="sometimes")

    def test_env_knob(self, monkeypatch):
        monkeypatch.setenv("REPRO_OPTIMIZER", "off")
        assert CompiledBackend().optimizer_mode == "off"
        monkeypatch.setenv("REPRO_OPTIMIZER", "explain")
        assert CompiledBackend().optimizer_mode == "explain"
        monkeypatch.setenv("REPRO_OPTIMIZER", "bogus")
        with pytest.warns(RuntimeWarning):
            assert CompiledBackend().optimizer_mode == "on"

    def test_optimizer_keeps_delta_path_alive(self):
        """Small stream databases never trade their plans for the
        interpreter — the incremental path must keep engaging."""
        backend = CompiledBackend(delta="on", optimizer="on")
        constraint = parse("forall x . forall y . E(x, y) -> E(y, x)")
        db = Database.graph([(a, b) for a in range(6) for b in range(6) if a < b])
        backend.evaluate(constraint, db)
        mirrored = db.apply_delta(Delta(inserted={"E": [(b, a) for (a, b) in db.edges]}))
        assert backend.evaluate(constraint, mirrored)
        assert backend.delta_hits >= 1

    def test_sharded_backend_optimizes(self):
        backend = ShardedBackend(shards=2, optimizer="on", pool_threads=0)
        db = random_graph(24, 0.4, seed=12)
        formula = parse("exists y . E(x, y) & E(y, z) & E(z, 0)")
        got = backend.extension(formula, db, ("x", "z"))
        expected = NaiveBackend().extension(formula, db, ("x", "z"))
        assert got == expected


# ---------------------------------------------------------------------------
# canonicalisation
# ---------------------------------------------------------------------------

class TestCanonicalisation:
    def test_identical_plans_unify(self):
        formula = parse("exists y . E(x, y) & E(y, z)")
        one = compile_extension(formula, ("x", "z"))
        two = compile_extension(formula, ("x", "z"))
        interned, shared = {}, set()
        canon_one, hits_one = canonical_plan(one, interned, shared)
        canon_two, hits_two = canonical_plan(two, interned, shared)
        assert hits_one == 0
        assert hits_two > 0
        assert canon_two is canon_one

    def test_opaque_selects_never_unify(self):
        db = Database.graph([(0, 1)])
        from repro.engine import Select

        base = compile_extension(parse("E(x, y)"), ("x", "y"))
        one = Select(base, lambda row, ctx: True, "opaque-1")
        two = Select(base, lambda row, ctx: False, "opaque-2")
        interned, shared = {}, set()
        canon_one, _ = canonical_plan(one, interned, shared)
        canon_two, _ = canonical_plan(two, interned, shared)
        assert canon_one is not canon_two
