"""Tests for the concrete-syntax parser, normal forms and simplification."""

import pytest

from repro.db import all_graphs, chain, cycle
from repro.logic import (
    And,
    Atom,
    BOTTOM,
    Const,
    CountingExists,
    Eq,
    Exists,
    Forall,
    Func,
    Iff,
    Implies,
    InterpretedAtom,
    Not,
    Or,
    ParseError,
    TOP,
    Var,
    eliminate_implications,
    evaluate,
    is_in_nnf,
    is_quantifier_free,
    negation_normal_form,
    parse,
    parse_term,
    prenex_normal_form,
    simplify,
)


class TestParser:
    def test_atoms_and_equalities(self):
        assert parse("E(x, y)") == Atom("E", "x", "y")
        assert parse("x = y") == Eq(Var("x"), Var("y"))
        assert parse("x != y") == Not(Eq(Var("x"), Var("y")))
        assert parse("E(1, 'a')") == Atom("E", Const(1), Const("a"))

    def test_connective_precedence(self):
        formula = parse("E(x,y) & E(y,x) | E(x,x)")
        assert isinstance(formula, Or)
        formula = parse("E(x,y) -> E(y,x) -> E(x,x)")
        # right associative
        assert isinstance(formula, Implies)
        assert isinstance(formula.conclusion, Implies)

    def test_keyword_connectives(self):
        assert parse("E(x,y) and not E(y,x)") == parse("E(x,y) & ~E(y,x)")
        assert parse("E(x,y) or E(y,x)") == parse("E(x,y) | E(y,x)")

    def test_quantifiers(self):
        formula = parse("forall x y . E(x, y)")
        assert isinstance(formula, Forall)
        assert isinstance(formula.body, Forall)

    def test_quantifier_scope_is_maximal(self):
        formula = parse("exists x . E(x, x) & E(x, x)")
        assert isinstance(formula, Exists)
        assert formula.is_sentence()

    def test_counting_quantifier(self):
        formula = parse("exists>=3 x . E(x, x)")
        assert formula == CountingExists("x", 3, Atom("E", "x", "x"))

    def test_true_false(self):
        assert parse("true") == TOP
        assert parse("false") == BOTTOM

    def test_interpreted_symbols(self):
        formula = parse("even(x) & E(x, succ(x))", predicates=["even"], functions=["succ"])
        assert isinstance(formula, And)
        assert any(isinstance(part, InterpretedAtom) for part in formula.parts)
        assert parse_term("succ(plus(x, 1))", functions=["succ", "plus"]) == Func(
            "succ", Func("plus", Var("x"), Const(1))
        )

    def test_iff(self):
        assert isinstance(parse("E(x,x) <-> E(x,x)"), Iff)

    def test_roundtrip_through_str(self):
        for text in [
            "forall x . exists y . E(x, y) & ~E(y, x)",
            "exists x y . E(x, y) -> x = y",
            "(E(a, b) | E(b, a)) & true",
        ]:
            formula = parse(text)
            assert parse(str(formula)) == formula

    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "E(x",
            "forall . E(x, x)",
            "exists x E(x, x)",
            "E(x, y) &",
            "x ==== y",
            "E(x, y) extra",
            "@bad",
        ],
    )
    def test_parse_errors(self, bad):
        with pytest.raises(ParseError):
            parse(bad)

    def test_parse_term_rejects_atom(self):
        with pytest.raises(ParseError):
            parse_term("E(x, y)")


class TestNormalForms:
    def test_eliminate_implications(self):
        formula = parse("E(x,x) -> E(y,y)")
        assert "->" not in str(eliminate_implications(formula))

    def test_nnf_pushes_negation(self):
        formula = parse("~(E(x,y) & forall z . E(z, z))")
        nnf = negation_normal_form(formula)
        assert is_in_nnf(nnf)
        assert not is_in_nnf(formula.implies(TOP))

    def test_nnf_preserves_semantics(self, graphs_3):
        sentences = [
            parse("~(exists x . E(x, x) & forall y . E(x, y))"),
            parse("~(forall x . E(x, x) -> exists y . E(x, y))"),
            parse("~(E(0, 1) <-> E(1, 0))"),
        ]
        for sentence in sentences:
            nnf = negation_normal_form(sentence)
            for g in graphs_3[:128]:
                assert evaluate(sentence, g) == evaluate(nnf, g)

    def test_prenex_form_structure(self):
        formula = parse("(exists x . E(x, x)) & (forall y . E(y, y))")
        prenex = prenex_normal_form(formula)
        # the prefix is at the front: stripping quantifiers leaves a QF matrix
        body = prenex
        while isinstance(body, (Exists, Forall)):
            body = body.body
        assert is_quantifier_free(body)

    def test_prenex_preserves_semantics(self, graphs_3):
        sentences = [
            parse("(exists x . E(x, x)) & (forall y . exists z . E(y, z))"),
            parse("~(exists x . E(x, x)) | (forall y . E(y, y))"),
        ]
        for sentence in sentences:
            prenex = prenex_normal_form(sentence)
            for g in graphs_3[:128]:
                assert evaluate(sentence, g) == evaluate(prenex, g)

    def test_prenex_renames_clashing_variables(self):
        formula = parse("(exists x . E(x, x)) & (exists x . ~E(x, x))")
        prenex = prenex_normal_form(formula)
        names = []
        body = prenex
        while isinstance(body, (Exists, Forall)):
            names.append(body.variable)
            body = body.body
        assert len(names) == len(set(names))


class TestSimplify:
    def test_constant_folding(self):
        assert simplify(parse("E(x,y) & true")) == parse("E(x,y)")
        assert simplify(parse("E(x,y) & false")) == BOTTOM
        assert simplify(parse("E(x,y) | true")) == TOP
        assert simplify(Not(Not(Atom("E", "x", "y")))) == Atom("E", "x", "y")

    def test_trivial_equality(self):
        assert simplify(parse("x = x")) == TOP

    def test_contradiction_and_excluded_middle(self):
        a = Atom("E", "x", "y")
        assert simplify(And(a, Not(a))) == BOTTOM
        assert simplify(Or(a, Not(a))) == TOP

    def test_duplicate_removal(self):
        a = Atom("E", "x", "y")
        assert simplify(And(a, a)) == a

    def test_implication_folding(self):
        a = Atom("E", "x", "y")
        assert simplify(Implies(TOP, a)) == a
        assert simplify(Implies(a, BOTTOM)) == Not(a)
        assert simplify(Implies(BOTTOM, a)) == TOP

    def test_iff_folding(self):
        a = Atom("E", "x", "y")
        assert simplify(Iff(a, a)) == TOP
        assert simplify(Iff(TOP, a)) == a

    def test_vacuous_quantifier(self):
        formula = Exists("z", Atom("E", "x", "y"))
        assert simplify(formula) == Atom("E", "x", "y")

    def test_simplify_preserves_semantics_on_nonempty(self, graphs_3):
        sentences = [
            parse("(forall x . E(x, x) & true) | false"),
            parse("exists x . (E(x, x) | ~E(x, x))"),
            parse("forall x . (E(x, x) -> E(x, x))"),
        ]
        nonempty = [g for g in graphs_3[:200] if not g.is_empty()]
        for sentence in sentences:
            reduced = simplify(sentence)
            for g in nonempty:
                assert evaluate(sentence, g) == evaluate(reduced, g)
