"""Tests for the model checker (active-domain semantics)."""

import pytest

from repro.db import Database, chain, cycle, diagonal_graph, linear_order
from repro.logic import (
    Atom,
    Const,
    CountingExists,
    EvaluationError,
    Exists,
    Forall,
    Model,
    Not,
    Var,
    arithmetic_signature,
    evaluate,
    extension,
    holds_for_all,
    parse,
    satisfies,
)
from repro.logic.builder import E, at_least_n_elements, exactly_n_elements


class TestBasicEvaluation:
    def test_atom(self):
        db = Database.graph([(1, 2)])
        assert evaluate(Atom("E", Const(1), Const(2)), db)
        assert not evaluate(Atom("E", Const(2), Const(1)), db)

    def test_quantifiers(self):
        db = cycle(4)
        assert evaluate(parse("forall x . exists y . E(x, y)"), db)
        assert not evaluate(parse("exists x . E(x, x)"), db)

    def test_free_variable_assignment(self):
        db = chain(3)
        formula = parse("exists y . E(x, y)")
        assert evaluate(formula, db, assignment={"x": 0})
        assert not evaluate(formula, db, assignment={"x": 2})

    def test_missing_assignment_raises(self):
        with pytest.raises(EvaluationError):
            evaluate(parse("E(x, y)"), chain(2))

    def test_unknown_relation_raises(self):
        with pytest.raises(EvaluationError):
            evaluate(parse("R(x) & exists x . R(x)"), chain(2), assignment={"x": 0})

    def test_connectives(self):
        db = chain(3)
        assert evaluate(parse("E(0, 1) & ~E(1, 0)"), db)
        assert evaluate(parse("E(1, 0) | E(0, 1)"), db)
        assert evaluate(parse("E(9, 9) -> false"), db)
        assert evaluate(parse("E(0, 1) <-> true"), db)

    def test_equality_with_constants(self):
        db = chain(2)
        assert evaluate(parse("0 = 0"), db)
        assert not evaluate(parse("0 = 1"), db)


class TestActiveDomainSemantics:
    def test_quantifiers_range_over_active_domain_only(self):
        db = Database.graph([(1, 2)])
        # 7 is not active, so no witness equals it
        assert not evaluate(parse("exists x . x = 7"), db)
        assert evaluate(parse("exists x . x = 1"), db)

    def test_empty_database(self):
        empty = Database.empty()
        assert not evaluate(parse("exists x . true"), empty)
        assert evaluate(parse("forall x . false"), empty)

    def test_explicit_domain_override(self):
        db = Database.graph([(1, 2)])
        assert evaluate(parse("exists x . x = 7"), db, domain={1, 2, 7})

    def test_satisfies_alias(self):
        assert satisfies(chain(3), parse("exists x y . E(x, y)"))

    def test_holds_for_all(self):
        family = [cycle(n) for n in range(2, 6)]
        assert holds_for_all(parse("forall x . exists y . E(x, y)"), family)
        assert not holds_for_all(parse("exists x . E(x, x)"), family)


class TestCountingQuantifier:
    def test_counting(self):
        db = diagonal_graph([1, 2, 3])
        assert evaluate(CountingExists("x", 3, Atom("E", "x", "x")), db)
        assert not evaluate(CountingExists("x", 4, Atom("E", "x", "x")), db)

    def test_counting_zero_is_trivial(self):
        assert evaluate(CountingExists("x", 0, Atom("E", "x", "x")), Database.empty())


class TestInterpretedSignatures:
    def test_interpreted_predicate(self):
        db = Database.graph([(2, 4)])
        formula = parse("forall x . even(x)", predicates=["even"])
        assert evaluate(formula, db, signature=arithmetic_signature())

    def test_interpreted_function(self):
        db = Database.graph([(1, 2)])
        formula = parse("exists x . E(x, succ(x))", functions=["succ"])
        assert evaluate(formula, db, signature=arithmetic_signature())

    def test_missing_interpretation_raises(self):
        db = Database.graph([(1, 2)])
        formula = parse("exists x . weird(x)", predicates=["weird"])
        with pytest.raises(EvaluationError):
            evaluate(formula, db)


class TestExtension:
    def test_extension_of_edge_formula(self):
        db = chain(3)
        rows = extension(E("x", "y"), db, ["x", "y"])
        assert rows == {(0, 1), (1, 2)}

    def test_extension_with_extra_variable(self):
        db = chain(2)
        rows = extension(E("x", "y"), db, ["x", "y", "z"])
        assert rows == {(0, 1, 0), (0, 1, 1)}

    def test_extension_missing_variable_raises(self):
        with pytest.raises(EvaluationError):
            extension(E("x", "y"), chain(2), ["x"])


class TestCountingSentences:
    def test_at_least_and_exactly(self):
        db = diagonal_graph([1, 2, 3])
        assert evaluate(at_least_n_elements(3), db)
        assert not evaluate(at_least_n_elements(4), db)
        assert evaluate(exactly_n_elements(3), db)
        assert not evaluate(exactly_n_elements(2), db)

    def test_on_linear_orders(self):
        assert evaluate(at_least_n_elements(4), linear_order(4))
        assert not evaluate(at_least_n_elements(5), linear_order(4))
