"""Tests for FOcount helpers, monadic Sigma-1-1 sentences and signatures."""

import pytest

from repro.db import Database, chain, cycle, diagonal_graph
from repro.logic import (
    CountingExists,
    EqualCardinalitySentence,
    InterpretedFunction,
    InterpretedPredicate,
    MonadicSigma11Sentence,
    ParitySentence,
    Signature,
    SignatureError,
    arithmetic_signature,
    count_satisfying,
    counting_to_first_order,
    evaluate,
    evaluate_equal_cardinality,
    evaluate_parity,
    order_signature,
    parse,
    successor_signature,
    two_colorability,
)
from repro.logic.builder import E
from repro.logic.syntax import Atom


class TestCounting:
    def test_count_satisfying(self):
        db = Database.graph([(1, 1), (2, 2), (3, 4)])
        assert count_satisfying(parse("E(x, x)"), "x", db) == 2

    def test_count_rejects_extra_free_variables(self):
        with pytest.raises(ValueError):
            count_satisfying(parse("E(x, y)"), "x", chain(3))

    def test_parity(self):
        db = diagonal_graph([1, 2, 3])
        assert evaluate_parity(parse("E(x, x)"), "x", db, odd=True)
        assert not evaluate_parity(parse("E(x, x)"), "x", db, odd=False)
        sentence = ParitySentence(parse("E(x, x)"), odd=True)
        assert sentence.holds(db)
        assert not sentence.holds(diagonal_graph([1, 2]))

    def test_equal_cardinality(self):
        db = Database.graph([(1, 2), (2, 1)])
        left = parse("exists y . E(x, y)")      # nodes with an out-edge
        right = parse("exists y . E(y, x)")     # nodes with an in-edge
        assert evaluate_equal_cardinality(left, right, "x", db)
        sentence = EqualCardinalitySentence(left, right)
        assert sentence.holds(db)
        # a star has one source but several sinks: the cardinalities differ
        assert not sentence.holds(Database.graph([(0, 1), (0, 2)]))

    def test_counting_to_first_order_equivalence(self, graphs_3):
        sentence = CountingExists("x", 2, Atom("E", "x", "x"))
        expanded = counting_to_first_order(sentence)
        assert expanded.quantifier_rank() >= 2
        for g in graphs_3[:128]:
            assert evaluate(sentence, g) == evaluate(expanded, g)


class TestMonadicSigma11:
    def test_two_colorability_on_cycles(self):
        sentence = two_colorability()
        assert sentence.holds(cycle(4))
        assert not sentence.holds(cycle(5))
        assert sentence.holds(cycle(6))

    def test_witness(self):
        sentence = two_colorability()
        witness = sentence.witness(cycle(4))
        assert witness is not None
        colored = witness["A"]
        for (x, y) in cycle(4).edges:
            assert (x in colored) != (y in colored)
        assert sentence.witness(cycle(3)) is None

    def test_matrix_must_be_sentence(self):
        with pytest.raises(ValueError):
            MonadicSigma11Sentence(["A"], Atom("E", "x", "y"))

    def test_clash_with_schema_rejected(self):
        sentence = MonadicSigma11Sentence(["E"], parse("forall x . E(x, x)"))
        with pytest.raises(ValueError):
            sentence.holds(chain(2))

    def test_nontrivial_set_quantification(self):
        # "there is a nonempty set closed under successors and containing no
        # endpoint" -- true exactly when the graph has a cycle reachable set
        matrix = parse(
            "(exists x . A(x)) & (forall x y . A(x) & E(x, y) -> A(y)) & "
            "(forall x . A(x) -> exists y . E(x, y))"
        )
        sentence = MonadicSigma11Sentence(["A"], matrix)
        assert sentence.holds(cycle(3))
        assert not sentence.holds(chain(4))


class TestSignatures:
    def test_stock_signatures(self):
        sig = arithmetic_signature()
        assert sig.predicate("even")(4)
        assert not sig.predicate("even")(3)
        assert sig.function("succ")(6) == 7
        assert order_signature().predicate("O")(1, 2)
        assert successor_signature().function("succ")(0) == 1

    def test_extension(self):
        base = successor_signature()
        extended = base.extend(
            predicates=(InterpretedPredicate("zero", 1, lambda x: x == 0),)
        )
        assert extended.is_extension_of(base)
        assert not base.is_extension_of(extended)
        assert extended.has_symbol("zero") and extended.has_symbol("succ")

    def test_duplicate_symbols_rejected(self):
        with pytest.raises(SignatureError):
            Signature(
                functions=(
                    InterpretedFunction("f", 1, lambda x: x),
                    InterpretedFunction("f", 2, lambda x, y: x),
                )
            )
        with pytest.raises(SignatureError):
            Signature(
                functions=(InterpretedFunction("f", 1, lambda x: x),),
                predicates=(InterpretedPredicate("f", 1, lambda x: True),),
            )

    def test_arity_enforcement(self):
        sig = successor_signature()
        with pytest.raises(SignatureError):
            sig.function("succ")(1, 2)
        with pytest.raises(SignatureError):
            sig.function("missing")

    def test_covers(self):
        sig = arithmetic_signature()
        assert sig.covers({"even", "succ"})
        assert not sig.covers({"even", "unknown"})

    def test_non_integers_map_to_zero(self):
        sig = arithmetic_signature()
        assert sig.function("succ")("banana") == 1
        assert sig.predicate("even")("banana")
