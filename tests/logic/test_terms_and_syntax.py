"""Tests for terms and the formula AST."""

import pytest

from repro.logic import (
    And,
    Atom,
    BOTTOM,
    Const,
    CountingExists,
    Eq,
    Exists,
    Forall,
    Formula,
    FormulaError,
    Func,
    Iff,
    Implies,
    InterpretedAtom,
    Not,
    Or,
    TOP,
    TermError,
    Var,
    evaluate_term,
    make_and,
    make_or,
)


class TestTerms:
    def test_var_free_variables(self):
        assert Var("x").free_variables() == frozenset({"x"})
        assert Const(5).free_variables() == frozenset()

    def test_var_substitution(self):
        assert Var("x").substitute({"x": Const(3)}) == Const(3)
        assert Var("y").substitute({"x": Const(3)}) == Var("y")

    def test_func_term(self):
        term = Func("succ", Var("x"))
        assert term.free_variables() == {"x"}
        assert term.function_symbols() == {"succ"}
        assert term.depth() == 1
        assert str(term) == "succ(x)"

    def test_func_substitution(self):
        term = Func("plus", Var("x"), Const(1))
        substituted = term.substitute({"x": Func("succ", Var("y"))})
        assert substituted == Func("plus", Func("succ", Var("y")), Const(1))
        assert substituted.depth() == 2

    def test_evaluate_term(self):
        functions = {"succ": lambda v: v + 1, "plus": lambda a, b: a + b}
        term = Func("plus", Func("succ", Var("x")), Const(2))
        assert evaluate_term(term, {"x": 4}, functions) == 7

    def test_evaluate_unassigned_variable(self):
        with pytest.raises(TermError):
            evaluate_term(Var("x"), {})

    def test_evaluate_unknown_function(self):
        with pytest.raises(TermError):
            evaluate_term(Func("mystery", Const(1)), {}, {})

    def test_invalid_names(self):
        with pytest.raises(TermError):
            Var("")
        with pytest.raises(TermError):
            Func("", Const(1))

    def test_constants_collection(self):
        term = Func("f", Const(1), Func("g", Const(2)))
        assert term.constants() == {1, 2}


class TestAtomsAndEquality:
    def test_atom_coercion(self):
        atom = Atom("E", "x", 5)
        assert atom.terms == (Var("x"), Const(5))
        assert atom.free_variables() == {"x"}
        assert atom.constants() == {5}
        assert atom.relation_symbols() == {"E"}

    def test_atom_requires_arguments(self):
        with pytest.raises(FormulaError):
            Atom("E")

    def test_eq(self):
        eq = Eq("x", "y")
        assert eq.free_variables() == {"x", "y"}
        assert Eq(1, 2).free_variables() == frozenset()

    def test_interpreted_atom(self):
        atom = InterpretedAtom("even", Func("succ", Var("x")))
        assert atom.interpreted_symbols() == {"even", "succ"}
        assert atom.free_variables() == {"x"}


class TestConnectivesAndQuantifiers:
    def test_free_and_bound_variables(self):
        formula = Exists("x", And(Atom("E", "x", "y"), Forall("z", Atom("E", "z", "x"))))
        assert formula.free_variables() == {"y"}
        assert formula.bound_variables() == {"x", "z"}

    def test_quantifier_rank(self):
        formula = Forall("x", Or(Exists("y", Atom("E", "x", "y")), Atom("E", "x", "x")))
        assert formula.quantifier_rank() == 2
        assert Atom("E", "x", "y").quantifier_rank() == 0

    def test_counting_quantifier(self):
        formula = CountingExists("x", 3, Atom("E", "x", "x"))
        assert formula.quantifier_rank() == 1
        assert formula.free_variables() == frozenset()
        with pytest.raises(FormulaError):
            CountingExists("x", -1, TOP)

    def test_size(self):
        formula = And(Atom("E", "x", "y"), Not(Atom("E", "y", "x")))
        assert formula.size() == 4

    def test_is_sentence(self):
        assert Forall("x", Atom("E", "x", "x")).is_sentence()
        assert not Atom("E", "x", "y").is_sentence()

    def test_atoms_iteration(self):
        formula = Implies(Atom("E", "x", "y"), Iff(Atom("R", "x"), TOP))
        assert {a.relation for a in formula.atoms()} == {"E", "R"}

    def test_walk_counts_nodes(self):
        formula = And(TOP, Not(BOTTOM))
        assert len(list(formula.walk())) == 4

    def test_empty_connective_rejected(self):
        with pytest.raises(FormulaError):
            And()
        with pytest.raises(FormulaError):
            Or()

    def test_operator_sugar(self):
        a, b = Atom("E", "x", "y"), Atom("E", "y", "x")
        assert (a & b) == make_and(a, b)
        assert (a | b) == make_or(a, b)
        assert (~a) == Not(a)


class TestSubstitution:
    def test_simple_substitution(self):
        formula = Atom("E", "x", "y").substitute({"x": Const(1)})
        assert formula == Atom("E", Const(1), "y")

    def test_substitution_skips_bound(self):
        formula = Exists("x", Atom("E", "x", "y"))
        result = formula.substitute({"x": Const(1), "y": Const(2)})
        assert result == Exists("x", Atom("E", "x", Const(2)))

    def test_capture_avoiding(self):
        # substituting y := x into  exists x . E(x, y)  must rename the bound x
        formula = Exists("x", Atom("E", "x", "y"))
        result = formula.substitute({"y": Var("x")})
        assert isinstance(result, Exists)
        assert result.variable != "x"
        assert Atom("E", Var(result.variable), Var("x")) == result.body

    def test_simultaneous_substitution(self):
        formula = Atom("E", "x", "y").substitute({"x": Var("y"), "y": Var("x")})
        assert formula == Atom("E", "y", "x")


class TestSmartConstructors:
    def test_make_and_flattens(self):
        a, b, c = Atom("P", "x"), Atom("Q", "x"), Atom("R", "x")
        assert make_and(make_and(a, b), c) == And(a, b, c)

    def test_make_and_drops_top(self):
        a = Atom("P", "x")
        assert make_and(a, TOP) == a
        assert make_and(TOP, TOP) == TOP

    def test_make_and_short_circuits_bottom(self):
        assert make_and(Atom("P", "x"), BOTTOM) == BOTTOM

    def test_make_or_duals(self):
        a = Atom("P", "x")
        assert make_or(a, BOTTOM) == a
        assert make_or(a, TOP) == TOP
        assert make_or(BOTTOM, BOTTOM) == BOTTOM

    def test_hashability(self):
        formulas = {Atom("E", "x", "y"), Atom("E", "x", "y"), Not(TOP)}
        assert len(formulas) == 2
