"""Tests for the builder DSL (the paper's stock sentences) and formula rewriting."""

import pytest

from repro.db import (
    Database,
    chain,
    chain_and_cycles,
    complete_graph,
    cycle,
    diagonal_graph,
    is_chain_and_cycle_graph,
    linear_order,
    two_branch_tree,
)
from repro.db.graph import same_generation
from repro.logic import AtomDefinition, evaluate, parse, relativize_quantifiers, substitute_atoms
from repro.logic.builder import (
    active_node_sentence,
    alpha_isolated_exactly,
    at_least_n_elements,
    chain_length_at_least,
    chain_length_exactly,
    exactly_n_elements,
    exists_unique,
    has_isolated_loop,
    has_nonloop_edge,
    has_some_edge,
    is_complete_loop_free_sentence,
    is_diagonal_sentence,
    psi_cc,
    totally_connected,
)
from repro.logic.syntax import Atom, Exists, Formula, Not
from repro.logic.terms import Var


class TestPsiCC:
    """Lemma 1: psi_C&C defines exactly the chain-and-cycle graphs."""

    def test_matches_structural_predicate_exhaustively(self, graphs_3):
        sentence = psi_cc()
        for g in graphs_3:
            assert evaluate(sentence, g) == is_chain_and_cycle_graph(g), g

    def test_on_named_families(self):
        sentence = psi_cc()
        assert evaluate(sentence, chain(5))
        assert evaluate(sentence, chain_and_cycles(3, [4, 2]))
        assert not evaluate(sentence, cycle(4))
        assert not evaluate(sentence, two_branch_tree(2, 2))
        assert not evaluate(sentence, diagonal_graph([1, 2]))
        assert not evaluate(sentence, Database.empty())


class TestChainLengthSentences:
    """The p_s and p0_i sentences of Theorem 7."""

    @pytest.mark.parametrize("chain_len", [2, 3, 5])
    @pytest.mark.parametrize("cycles", [(), (3,), (2, 4)])
    def test_p_s_measures_chain_component(self, chain_len, cycles):
        g = chain_and_cycles(chain_len, list(cycles))
        for s in range(2, chain_len + 2):
            expected = chain_len >= s
            assert evaluate(chain_length_at_least(s), g) == expected

    def test_p0_exact(self):
        g = chain_and_cycles(4, [3])
        assert evaluate(chain_length_exactly(4), g)
        assert not evaluate(chain_length_exactly(3), g)
        assert not evaluate(chain_length_exactly(5), g)

    def test_trivial_thresholds(self):
        from repro.logic.syntax import TOP

        assert chain_length_at_least(0) == TOP
        assert chain_length_at_least(1) == TOP


class TestCountingSentences:
    def test_mu_s(self):
        g = diagonal_graph([1, 2, 3, 4])
        assert evaluate(at_least_n_elements(4), g)
        assert not evaluate(at_least_n_elements(5), g)
        assert evaluate(exactly_n_elements(4), g)

    def test_exists_unique(self):
        one_loop = Database.graph([(1, 1), (1, 2)])
        assert evaluate(exists_unique("x", Atom("E", "x", "x")), one_loop)
        two_loops = Database.graph([(1, 1), (2, 2)])
        assert not evaluate(exists_unique("x", Atom("E", "x", "x")), two_loops)


class TestIsolatedNodeSentences:
    """alpha_i of Claim 3: counts of isolated looped nodes in sg images."""

    @pytest.mark.parametrize("n,m", [(2, 2), (2, 3), (2, 4), (3, 5)])
    def test_alpha_on_same_generation_images(self, n, m):
        image = same_generation(two_branch_tree(n, m))
        expected = abs(n - m) + 1
        assert evaluate(alpha_isolated_exactly(expected), image)
        assert not evaluate(alpha_isolated_exactly(expected + 1), image)

    def test_has_isolated_loop(self):
        assert evaluate(has_isolated_loop(), diagonal_graph([1]))
        assert not evaluate(has_isolated_loop(), diagonal_graph([1, 2]))


class TestShapeSentences:
    def test_is_diagonal(self):
        assert evaluate(is_diagonal_sentence(), diagonal_graph([1, 2, 3]))
        assert not evaluate(is_diagonal_sentence(), chain(3))
        assert evaluate(is_diagonal_sentence(), Database.empty())

    def test_is_complete_loop_free(self):
        assert evaluate(is_complete_loop_free_sentence(), complete_graph([1, 2, 3]))
        assert not evaluate(is_complete_loop_free_sentence(), chain(3))

    def test_edge_sentences(self):
        assert evaluate(has_some_edge(), chain(2))
        assert not evaluate(has_some_edge(), Database.empty())
        assert evaluate(has_nonloop_edge(), chain(2))
        assert not evaluate(has_nonloop_edge(), diagonal_graph([1]))

    def test_totally_connected(self):
        assert evaluate(totally_connected(), Database.graph([(1, 1)]))
        assert not evaluate(totally_connected(), chain(3))

    def test_active_node_sentence(self):
        g = chain(3)
        assert evaluate(active_node_sentence(1), g)
        assert not evaluate(active_node_sentence(99), g)


class TestAtomSubstitution:
    def test_substitute_atoms_basic(self):
        # define E'(x, y) := E(y, x) and rewrite a constraint about E'
        definition = AtomDefinition(("x", "y"), Atom("E", "y", "x"))
        constraint = parse("forall x . ~E(x, x)")
        rewritten = substitute_atoms(constraint, {"E": definition})
        # reversing edges does not change loop-freeness
        for g in [chain(3), cycle(4), Database.graph([(1, 1)])]:
            assert evaluate(rewritten, g) == evaluate(constraint, g)

    def test_substitution_semantics(self, graphs_3):
        # E'(x, y) := E(x, y) | E(y, x)  (symmetric closure)
        definition = AtomDefinition(("a", "b"), parse("E(a, b) | E(b, a)"))
        constraint = parse("forall x y . E(x, y) -> E(y, x)")
        rewritten = substitute_atoms(constraint, {"E": definition})
        # after symmetric closure the constraint always holds
        for g in graphs_3[:100]:
            assert evaluate(rewritten, g)

    def test_definition_validation(self):
        with pytest.raises(Exception):
            AtomDefinition(("x", "x"), Atom("E", "x", "x"))
        with pytest.raises(Exception):
            AtomDefinition(("x",), Atom("E", "x", "y"))

    def test_instantiate_arity_check(self):
        definition = AtomDefinition(("x", "y"), Atom("E", "x", "y"))
        with pytest.raises(Exception):
            definition.instantiate((Var("a"),))


class TestRelativization:
    def test_relativize_to_looped_nodes(self):
        guard = lambda name: Atom("E", name, name)
        constraint = parse("exists x . true")
        relativized = relativize_quantifiers(constraint, guard)
        assert evaluate(relativized, diagonal_graph([1]))
        assert not evaluate(relativized, chain(3))

    def test_relativize_forall(self):
        guard = lambda name: Atom("E", name, name)
        constraint = parse("forall x . E(x, x)")
        relativized = relativize_quantifiers(constraint, guard)
        # trivially true: only looped nodes are inspected
        assert evaluate(relativized, chain(4))
