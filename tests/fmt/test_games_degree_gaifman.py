"""Tests for EF games, Ajtai-Fagin machinery, degree counts and Gaifman locality."""

import pytest

from repro.db import (
    Database,
    binary_tree,
    chain,
    cycle,
    diagonal_graph,
    double_cycle_family,
    linear_order,
    single_cycle_family,
    transitive_closure,
    two_branch_tree,
)
from repro.fmt import (
    BasicLocalSentence,
    LocalFormula,
    collapse_branch,
    degree_count,
    dist_at_most,
    dist_greater_than,
    distinguishing_rank,
    duplicator_wins,
    duplicator_wins_af_game,
    ef_equivalent_linear_orders,
    in_degrees,
    isolated_loop_local_formula,
    lemma4_bound,
    lemma4_find_pair,
    loop_local_formula,
    max_degree,
    out_degrees,
    paper_duplicator_response,
    partial_isomorphism,
    relativize_to_ball,
    violates_degree_bound,
)
from repro.fmt.hanf import same_type_counts
from repro.logic import evaluate, parse
from repro.logic.monadic import color_graph


class TestPartialIsomorphism:
    def test_empty_map(self):
        assert partial_isomorphism(chain(3), chain(4), (), ())

    def test_edge_preservation(self):
        assert partial_isomorphism(chain(3), chain(3), (0, 1), (0, 1))
        assert not partial_isomorphism(chain(3), chain(3), (0, 1), (0, 2))

    def test_injectivity(self):
        assert not partial_isomorphism(chain(3), chain(3), (0, 1), (0, 0))

    def test_loops_respected(self):
        a = Database.graph([(1, 1)])
        b = Database.graph([(1, 2)])
        assert not partial_isomorphism(a, b, (1,), (1,))


class TestEFGames:
    def test_isomorphic_graphs_always_duplicator(self):
        assert duplicator_wins(chain(3), chain(3, labels=["a", "b", "c"]), 3)

    def test_chain_lengths_distinguished_at_low_rank(self):
        # chain(2) has 2 nodes, chain(4) has 4: rank-2 sentences tell them apart
        rank = distinguishing_rank(chain(2), chain(4), 3)
        assert rank is not None and rank <= 2

    def test_diagonal_graphs_need_size_many_rounds(self):
        small, large = diagonal_graph(range(3)), diagonal_graph(range(4))
        assert duplicator_wins(small, large, 3)
        assert not duplicator_wins(small, large, 4)

    def test_cycle_families_low_rank_equivalence(self):
        one = single_cycle_family(3)   # a 6-cycle
        two = double_cycle_family(3)   # two 3-cycles
        assert duplicator_wins(one, two, 2)
        # they are NOT isomorphic, and a high enough rank separates them
        assert not one.is_isomorphic(two)

    def test_empty_vs_nonempty(self):
        assert not duplicator_wins(Database.empty(), chain(2), 1)
        assert duplicator_wins(Database.empty(), Database.empty(), 3)

    def test_game_agrees_with_fo_truth(self, graphs_2):
        # if the duplicator wins k rounds, no sentence of rank <= k separates
        # the structures; spot-check with a bank of rank-2 sentences
        sentences = [
            parse("exists x . E(x, x)"),
            parse("exists x y . E(x, y)"),
            parse("forall x . exists y . E(x, y)"),
            parse("forall x y . E(x, y)"),
            parse("exists x . forall y . ~E(y, x)"),
        ]
        pairs = [(graphs_2[3], graphs_2[5]), (graphs_2[7], graphs_2[11])]
        for a, b in pairs:
            if duplicator_wins(a, b, 2):
                for sentence in sentences:
                    assert evaluate(sentence, a) == evaluate(sentence, b)

    def test_linear_order_criterion(self):
        assert ef_equivalent_linear_orders(10, 12, 3)      # both >= 2^3 - 1
        assert not ef_equivalent_linear_orders(3, 12, 3)
        assert ef_equivalent_linear_orders(5, 5, 10)
        # cross-check the criterion against the actual game on small orders
        # (sizes >= 2, because L_0 and L_1 coincide as edge-only databases)
        assert duplicator_wins(linear_order(3), linear_order(4), 2) == \
            ef_equivalent_linear_orders(3, 4, 2)
        assert duplicator_wins(linear_order(2), linear_order(3), 1) == \
            ef_equivalent_linear_orders(2, 3, 1)
        assert duplicator_wins(linear_order(2), linear_order(4), 2) == \
            ef_equivalent_linear_orders(2, 4, 2)


class TestDegreeCounts:
    def test_chain_degree_count_is_constant(self):
        for n in (2, 5, 9):
            assert degree_count(chain(n)) == 4  # in-degrees {0,1} + out-degrees {0,1}

    def test_transitive_closure_blows_up_degree_count(self):
        # dc(tc(chain(n))) grows with n: the bounded degree property fails
        assert degree_count(transitive_closure(chain(10))) == 20
        assert degree_count(transitive_closure(chain(20))) == 40

    def test_degree_maps(self):
        g = Database.graph([(0, 1), (0, 2), (1, 2)])
        assert out_degrees(g)[0] == 2
        assert in_degrees(g)[2] == 2
        assert max_degree(g) == 2

    def test_violates_degree_bound(self):
        violated, evidence = violates_degree_bound(
            transitive_closure, [chain(n) for n in (4, 8, 12)], lambda dc: dc + 3
        )
        assert violated
        assert evidence["output_dc"] > evidence["allowed"]

    def test_identity_respects_degree_bound(self):
        violated, _ = violates_degree_bound(
            lambda g: g, [binary_tree(3), chain(6)], lambda dc: dc
        )
        assert not violated


class TestGaifmanLocality:
    def test_distance_formulas(self):
        g = chain(5)
        close = dist_at_most("x", "y", 2)
        assert evaluate(close, g, assignment={"x": 0, "y": 2})
        assert not evaluate(close, g, assignment={"x": 0, "y": 3})
        far = dist_greater_than("x", "y", 2)
        assert evaluate(far, g, assignment={"x": 0, "y": 4})

    def test_distance_is_undirected(self):
        g = chain(4)
        assert evaluate(dist_at_most("x", "y", 1), g, assignment={"x": 2, "y": 1})

    def test_relativize_to_ball(self):
        # "some node within distance 1 of x has a successor"
        inner = parse("exists y . E(y, z) & true")
        # use a simple formula: exists y . E(x, y) relativised to radius 0 ball
        formula = relativize_to_ball(parse("exists y . E(x, y)"), "x", 0)
        g = chain(3)
        # radius-0 ball around x is {x}; E(x, x) fails on a chain
        assert not evaluate(formula, g, assignment={"x": 0})

    def test_basic_local_sentence_scattered_loops(self):
        sentence = BasicLocalSentence(2, 0, loop_local_formula())
        assert sentence.holds(diagonal_graph([1, 2]))
        assert not sentence.holds(diagonal_graph([1]))
        assert not sentence.holds(chain(4))

    def test_basic_local_sentence_scattering_condition(self):
        # two witnesses with an out-neighbour at mutual distance > 2: needs a
        # long chain, not a short one
        sentence = BasicLocalSentence(2, 1, LocalFormula("x", 1, parse("exists y . E(x, y)")))
        assert sentence.holds(chain(6))
        assert not sentence.holds(chain(3))

    def test_isolated_loop_local_formula(self):
        sentence = BasicLocalSentence(1, 1, isolated_loop_local_formula())
        assert sentence.holds(diagonal_graph([5]))
        assert not sentence.holds(chain(3))

    def test_validation(self):
        with pytest.raises(ValueError):
            BasicLocalSentence(0, 1, loop_local_formula())
        with pytest.raises(ValueError):
            LocalFormula("x", 1, parse("E(x, y)")).free_variable_check()


class TestAjtaiFagin:
    def test_lemma4_bound_positive(self):
        assert lemma4_bound(1, 2) > 0
        with pytest.raises(ValueError):
            lemma4_bound(0, 1)

    def test_lemma4_finds_pair_in_alternating_partition(self):
        assignment = [0, 1] * 6
        pair = lemma4_find_pair(assignment, 1)
        assert pair is not None
        i1, i2 = pair
        assert assignment[i1] == assignment[i2]

    def test_lemma4_guarantee_above_bound(self):
        # any partition of a long enough interval into 2 classes has the pair
        length = lemma4_bound(1, 2) + 1
        assignment = [(i * 7 + i // 3) % 2 for i in range(length)]
        assert lemma4_find_pair(assignment, 1) is not None

    def test_lemma4_can_fail_below_bound(self):
        assert lemma4_find_pair([0, 1, 2, 3], 2) is None

    def test_collapse_branch_shrinks_left_branch(self):
        collapsed = collapse_branch(5, 1, 3, branch="left")
        original = two_branch_tree(5, 5)
        assert len(collapsed.nodes) == len(original.nodes) - 2
        # the collapsed graph is G_{3,5} up to isomorphism
        assert collapsed.is_isomorphic(two_branch_tree(3, 5))

    def test_paper_duplicator_response_yields_hanf_equivalent_colored_graphs(self):
        n, colors, d, m = 14, 1, 1, 2
        coloring = {node: 0 for node in two_branch_tree(n, n).active_domain}
        response = paper_duplicator_response(n, coloring, colors, d, m)
        assert response is not None
        collapsed, inherited, (a, b) = response
        g1 = color_graph(two_branch_tree(n, n), coloring, colors)
        g2 = color_graph(collapsed, inherited, colors)
        from repro.fmt import hanf_equivalent

        assert hanf_equivalent(g1, g2, d, m)

    def test_af_game_small_instance(self):
        # G = {G_{n,n}}: with 1 colour and 1 round the duplicator wins the
        # Ajtai-Fagin game already on a tiny instance
        chosen = two_branch_tree(2, 2)
        alternatives = [two_branch_tree(1, 3), two_branch_tree(1, 2), two_branch_tree(2, 3)]
        assert duplicator_wins_af_game(chosen, alternatives, colors=1, rounds=1)
