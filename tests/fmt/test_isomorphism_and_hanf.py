"""Tests for isomorphism testing, canonical forms and Hanf locality."""

import pytest

from repro.db import Database, chain, cycle, diagonal_graph, two_branch_tree
from repro.fmt import (
    are_isomorphic,
    ball,
    canonical_form,
    color_refinement,
    degree_bound,
    gaifman_adjacency,
    gaifman_distance,
    hanf_equivalent,
    hanf_threshold,
    neighborhood,
    neighborhood_type,
    same_type_counts,
    type_census,
)


class TestIsomorphism:
    def test_relabelled_chains(self):
        assert are_isomorphic(chain(4), chain(4, labels=["a", "b", "c", "d"]))

    def test_chain_vs_cycle(self):
        assert not are_isomorphic(chain(4), cycle(4))

    def test_direction_matters(self):
        a = Database.graph([(0, 1), (0, 2)])       # out-star
        b = Database.graph([(1, 0), (2, 0)])       # in-star
        assert not are_isomorphic(a, b)

    def test_distinguished_points(self):
        g = chain(3)
        h = chain(3, labels=[10, 11, 12])
        # root must map to root
        assert are_isomorphic(g, h, distinguished_a=[0], distinguished_b=[10])
        # root cannot map to the middle node
        assert not are_isomorphic(g, h, distinguished_a=[0], distinguished_b=[11])

    def test_empty_graphs(self):
        assert are_isomorphic(Database.empty(), Database.empty())

    def test_different_sizes(self):
        assert not are_isomorphic(chain(3), chain(4))

    def test_canonical_form_complete_for_small_graphs(self, graphs_2):
        for i, a in enumerate(graphs_2):
            for b in graphs_2[i:]:
                assert (canonical_form(a) == canonical_form(b)) == a.is_isomorphic(b)

    def test_canonical_form_respects_distinguished_points(self):
        g = chain(3)
        assert canonical_form(g, (0,)) != canonical_form(g, (1,))
        assert canonical_form(g, (0,)) == canonical_form(
            chain(3, labels=["a", "b", "c"]), ("a",)
        )

    def test_color_refinement_distinguishes_positions(self):
        colors = color_refinement(chain(4))
        # the two interior nodes of a 4-chain have different colours from the ends
        assert colors[0] != colors[1]
        assert colors[0] != colors[3]


class TestGaifmanDistance:
    def test_adjacency_is_symmetric(self):
        adjacency = gaifman_adjacency(chain(3))
        assert 1 in adjacency[0] and 0 in adjacency[1]

    def test_distance_on_chain(self):
        distances = gaifman_distance(chain(5), 0)
        assert distances[4] == 4
        assert distances[0] == 0

    def test_distance_ignores_direction(self):
        distances = gaifman_distance(Database.graph([(1, 0), (1, 2)]), 0)
        assert distances[2] == 2

    def test_ball(self):
        members = ball(chain(7), 3, 2)
        assert members == frozenset({1, 2, 3, 4, 5})

    def test_isolated_source(self):
        assert gaifman_distance(chain(3), "zz") == {"zz": 0}


class TestNeighborhoodsAndTypes:
    def test_neighborhood_structure(self):
        sub, centre = neighborhood(chain(7), 3, 1)
        assert centre == 3
        assert sub.nodes == frozenset({2, 3, 4})

    def test_interior_chain_nodes_share_type(self):
        g = chain(9)
        t_three = neighborhood_type(g, 3, 1)
        t_four = neighborhood_type(g, 4, 1)
        t_end = neighborhood_type(g, 0, 1)
        assert t_three == t_four
        assert t_three != t_end

    def test_type_census_totals(self):
        g = chain(6)
        census = type_census(g, 1)
        assert sum(census.values()) == 6

    def test_degree_bound(self):
        assert degree_bound(chain(5)) == 2
        assert degree_bound(two_branch_tree(3, 3)) == 2
        assert degree_bound(Database.empty()) == 0


class TestHanfEquivalence:
    """The counting core of Claim 3 (Theorem 2) and Theorem 3."""

    @pytest.mark.parametrize("r", [1, 2])
    def test_gnn_pairs_have_equal_type_counts(self, r):
        # for n > 2r + 1 the graphs G_{n,n} and G_{n-1,n+1} realise every
        # r-type the same number of times
        n = 2 * r + 2
        assert same_type_counts(
            two_branch_tree(n, n), two_branch_tree(n - 1, n + 1), r
        )

    def test_small_gnn_pairs_can_differ(self):
        # with n <= 2r + 1 the branch ends interfere and the counts differ
        assert not same_type_counts(two_branch_tree(2, 2), two_branch_tree(1, 3), 2)

    def test_cycle_families_equivalent(self):
        # C^1_n (one 2n-cycle) and C^2_n (two n-cycles) realise the same
        # r-types as soon as n is large enough relative to r
        from repro.db import double_cycle_family, single_cycle_family

        assert same_type_counts(single_cycle_family(4), double_cycle_family(4), 1)
        # for radius 2 the cycles must be longer than 2r + 1 = 5 so that every
        # 2-ball is a path rather than the whole cycle
        assert same_type_counts(single_cycle_family(6), double_cycle_family(6), 2)
        assert hanf_equivalent(single_cycle_family(6), double_cycle_family(6), 2, 3)

    def test_hanf_equivalent_thresholding(self):
        # chains of different lengths are d,m-equivalent once both are long:
        # interior types occur >= m times in both
        assert hanf_equivalent(chain(12), chain(15), 1, 3)
        assert not hanf_equivalent(chain(3), chain(15), 1, 3)

    def test_threshold_helper(self):
        d, m = hanf_threshold(2)
        assert d == 9 and m == 3
        with pytest.raises(ValueError):
            hanf_threshold(-1)
