"""The fault-injection framework itself: schedules, determinism, hooks, env."""

from __future__ import annotations

import pytest

from repro import faults
from repro.db.engines import StorageEngineError


@pytest.fixture(autouse=True)
def clean_hooks():
    faults.uninstall()
    yield
    faults.uninstall()


class TestNullHooks:
    def test_no_plan_means_noops(self):
        assert faults.active_plan() is None
        faults.fire("wal.fsync")  # must not raise
        assert faults.fired("anything") is False
        assert faults.delay("anything") == 0.0

    def test_uninstall_restores_noops(self):
        plan = faults.FaultPlan().site("x")
        faults.install(plan)
        with pytest.raises(faults.InjectedFault):
            faults.fire("x")
        faults.uninstall()
        faults.fire("x")  # no-op again
        assert faults.active_plan() is None

    def test_unknown_site_is_free_with_plan_installed(self):
        faults.install(faults.FaultPlan().site("x"))
        faults.fire("some.other.site")
        assert faults.fired("some.other.site") is False


class TestSchedules:
    def test_hits_schedule_is_exact(self):
        plan = faults.FaultPlan().site("s", hits=(2, 5))
        fired = [plan.fired("s") for _ in range(6)]
        assert fired == [False, True, False, False, True, False]

    def test_after_skips_prefix(self):
        plan = faults.FaultPlan().site("s", after=3)
        assert [plan.fired("s") for _ in range(5)] == [
            False, False, False, True, True,
        ]

    def test_limit_caps_triggers(self):
        plan = faults.FaultPlan().site("s", limit=2)
        assert sum(plan.fired("s") for _ in range(10)) == 2
        assert plan.triggered("s") == 2

    def test_probability_is_seed_deterministic(self):
        def run(seed):
            plan = faults.FaultPlan(seed=seed).site("s", probability=0.5)
            return [plan.fired("s") for _ in range(64)]

        assert run(7) == run(7)
        assert run(7) != run(8)  # astronomically unlikely to collide

    def test_sites_have_independent_streams(self):
        plan = faults.FaultPlan(seed=3)
        plan.site("a", probability=0.5)
        plan.site("b", probability=0.5)
        a_alone = faults.FaultPlan(seed=3).site("a", probability=0.5)
        interleaved = [plan.fired("a") for _ in range(32)]
        for _ in range(32):
            plan.fired("b")
        assert interleaved == [a_alone.fired("a") for _ in range(32)]

    def test_report_counts_calls_and_triggers(self):
        plan = faults.FaultPlan().site("s", hits=(1,))
        plan.fired("s")
        plan.fired("s")
        assert plan.report()["s"] == {"calls": 2, "triggers": 1}


class TestExceptionKinds:
    def test_default_is_injected_fault(self):
        plan = faults.FaultPlan().site("s")
        with pytest.raises(faults.InjectedFault) as err:
            plan.fire("s")
        assert err.value.site == "s"

    @pytest.mark.parametrize(
        "kind,expected",
        [
            ("oserror", OSError),
            ("disk_full", OSError),
            ("storage", StorageEngineError),
            ("conn_reset", ConnectionResetError),
            ("broken_pipe", BrokenPipeError),
            ("timeout", TimeoutError),
        ],
    )
    def test_kinds_map_to_exceptions(self, kind, expected):
        plan = faults.FaultPlan().site("s", exc=kind)
        with pytest.raises(expected):
            plan.fire("s")

    def test_disk_full_carries_enospc(self):
        plan = faults.FaultPlan().site("s", exc="disk_full")
        with pytest.raises(OSError) as err:
            plan.fire("s")
        assert err.value.errno == 28

    def test_exc_none_fires_without_raising(self):
        plan = faults.FaultPlan().site("s", exc="none", latency=0.25)
        plan.fire("s")  # latency-only sites never raise from fire()
        assert plan.delay("s") == 0.25

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            faults.FaultSpec(site="s", exc="nope")

    def test_bad_probability_rejected(self):
        with pytest.raises(ValueError):
            faults.FaultSpec(site="s", probability=1.5)


class TestDelay:
    def test_delay_returns_latency_without_sleeping(self):
        plan = faults.FaultPlan().site("s", latency=10.0, exc="none")
        import time

        begun = time.monotonic()
        assert plan.delay("s") == 10.0
        assert time.monotonic() - begun < 1.0

    def test_delay_zero_when_not_triggered(self):
        plan = faults.FaultPlan().site("s", latency=1.0, hits=(2,))
        assert plan.delay("s") == 0.0
        assert plan.delay("s") == 1.0


class TestInjectedContext:
    def test_context_installs_and_uninstalls(self):
        plan = faults.FaultPlan().site("x")
        with faults.injected(plan) as active:
            assert active is plan
            assert faults.active_plan() is plan
        assert faults.active_plan() is None


class TestEnvParsing:
    def test_parse_simple_plan(self):
        plan = faults.parse_plan(
            "wal.fsync:prob=0.5,exc=oserror;serve.read.slow:latency=0.05,exc=none;seed=42"
        )
        assert plan is not None
        assert plan.seed == 42
        report = plan.report()
        assert set(report) == {"wal.fsync", "serve.read.slow"}

    def test_parse_hits_and_limit(self):
        plan = faults.parse_plan("s:hits=2-5,limit=1")
        assert [plan.fired("s") for _ in range(5)] == [
            False, True, False, False, False,
        ]

    def test_malformed_entry_warns_and_skips(self):
        with pytest.warns(RuntimeWarning):
            plan = faults.parse_plan("garbage-no-colon;ok.site:prob=1.0")
        assert plan is not None
        assert set(plan.report()) == {"ok.site"}

    def test_invalid_option_warns_and_skips_entry(self):
        with pytest.warns(RuntimeWarning):
            plan = faults.parse_plan("s:prob=banana")
        assert plan is None

    def test_invalid_seed_warns(self):
        with pytest.warns(RuntimeWarning):
            plan = faults.parse_plan("seed=xyz;s:prob=1.0")
        assert plan is not None and plan.seed == 0

    def test_off_values_mean_no_plan(self, monkeypatch):
        for value in ("", "off", "0", "none"):
            monkeypatch.setenv(faults.ENV_KNOB, value)
            assert faults.plan_from_env() is None

    def test_plan_from_env(self, monkeypatch):
        monkeypatch.setenv(faults.ENV_KNOB, "a.b:prob=1.0,exc=timeout")
        plan = faults.plan_from_env()
        assert plan is not None
        with pytest.raises(TimeoutError):
            plan.fire("a.b")
