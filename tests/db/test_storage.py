"""Tests for the transactional storage engine."""

import pytest

from repro.db import (
    Database,
    GRAPH_SCHEMA,
    MemoryEngine,
    Schema,
    Store,
    StorageError,
    TransactionAborted,
)


@pytest.fixture
def store():
    return Store(GRAPH_SCHEMA, Database.graph([(1, 2), (2, 3)]))


class TestBasics:
    def test_snapshot_matches_initial(self, store):
        assert store.snapshot() == Database.graph([(1, 2), (2, 3)])
        assert store.cardinality("E") == 2

    def test_schema_mismatch_rejected(self):
        other = Database(Schema.of(R=1), {"R": [(1,)]})
        with pytest.raises(StorageError):
            Store(GRAPH_SCHEMA, other)

    def test_writes_require_transaction(self, store):
        with pytest.raises(StorageError):
            store.insert("E", (9, 9))
        with pytest.raises(StorageError):
            store.delete("E", (1, 2))
        with pytest.raises(StorageError):
            store.commit()

    def test_contains_and_scan(self, store):
        assert store.contains("E", (1, 2))
        assert set(store.scan("E")) == {(1, 2), (2, 3)}


class TestReadYourOwnWrites:
    """Reads during an open transaction must see the open write log."""

    def test_scan_and_contains_see_open_writes(self, store):
        store.begin()
        store.insert("E", (3, 4))
        store.delete("E", (1, 2))
        assert store.contains("E", (3, 4))
        assert not store.contains("E", (1, 2))
        assert set(store.scan("E")) == {(2, 3), (3, 4)}
        assert store.cardinality("E") == 2
        store.rollback()
        # after rollback the committed state is untouched
        assert set(store.scan("E")) == {(1, 2), (2, 3)}

    def test_snapshot_is_tentative_inside_transaction(self, store):
        store.begin()
        store.insert("E", (3, 4))
        assert store.snapshot() == Database.graph([(1, 2), (2, 3), (3, 4)])
        store.rollback()
        assert store.snapshot() == Database.graph([(1, 2), (2, 3)])

    def test_committed_snapshot_never_sees_open_log(self, store):
        store.begin()
        store.insert("E", (3, 4))
        assert store.committed_snapshot() == Database.graph([(1, 2), (2, 3)])
        store.commit()
        assert store.committed_snapshot() == Database.graph([(1, 2), (2, 3), (3, 4)])

    def test_reinsert_of_own_delete_folds(self, store):
        store.begin()
        store.delete("E", (1, 2))
        assert not store.contains("E", (1, 2))
        store.insert("E", (1, 2))
        assert store.contains("E", (1, 2))
        store.commit()
        assert store.snapshot() == Database.graph([(1, 2), (2, 3)])


class TestVersionPinning:
    def test_version_advances_per_effective_commit(self, store):
        v0 = store.version
        store.begin(); store.insert("E", (3, 4)); store.commit()
        assert store.version == v0 + 1
        store.begin(); store.commit()          # empty transaction
        assert store.version == v0 + 1
        store.begin(); store.insert("E", (4, 5)); store.rollback()
        assert store.version == v0 + 1

    def test_cancelling_writes_do_not_advance_version(self, store):
        v0 = store.version
        store.begin()
        store.insert("E", (7, 8))
        store.delete("E", (7, 8))   # net effect: nothing
        store.commit()
        assert store.version == v0
        assert store.snapshot() == Database.graph([(1, 2), (2, 3)])

    def test_pin_is_stable_while_writer_progresses(self, store):
        version, snapshot = store.pin()
        store.begin()
        store.insert("E", (9, 9))
        # the pinned snapshot is immutable and pre-transaction
        assert snapshot == Database.graph([(1, 2), (2, 3)])
        assert store.pin()[0] == version
        store.commit()
        new_version, new_snapshot = store.pin()
        assert new_version == version + 1
        assert new_snapshot == Database.graph([(1, 2), (2, 3), (9, 9)])

    def test_pinned_snapshots_chain_provenance(self, store):
        _version, before = store.pin()
        store.begin(); store.insert("E", (5, 6)); store.commit()
        _version, after = store.pin()
        link = after.provenance_step()
        assert link is not None and link[0] is before


class TestTransactions:
    def test_commit_applies_writes(self, store):
        store.begin()
        assert store.insert("E", (3, 4))
        assert store.delete("E", (1, 2))
        store.commit()
        assert store.snapshot() == Database.graph([(2, 3), (3, 4)])
        assert store.stats.committed == 1

    def test_rollback_undoes_everything(self, store):
        before = store.snapshot()
        store.begin()
        store.insert("E", (3, 4))
        store.insert("E", (4, 5))
        store.delete("E", (1, 2))
        undone = store.rollback()
        assert undone == 3
        assert store.snapshot() == before
        assert store.stats.aborted == 1

    def test_noop_writes_not_logged(self, store):
        store.begin()
        assert not store.insert("E", (1, 2))      # already present
        assert not store.delete("E", (9, 9))      # never present
        assert store.rollback() == 0

    def test_nested_begin_rejected(self, store):
        store.begin()
        with pytest.raises(StorageError):
            store.begin()
        store.rollback()

    def test_apply_database(self, store):
        target = Database.graph([(7, 8)])
        store.begin()
        store.apply_database(target)
        store.commit()
        assert store.snapshot() == target

    def test_commit_unchecked_skips_checkers(self, store):
        store.register_checker("never", lambda db: False)
        store.begin()
        store.insert("E", (9, 9))
        store.commit_unchecked()
        assert store.contains("E", (9, 9))


class TestIntegrityCheckers:
    def test_checker_accepts(self, store):
        store.register_checker("at-most-5", lambda db: db.cardinality("E") <= 5)
        store.begin()
        store.insert("E", (3, 4))
        store.commit()
        assert store.cardinality("E") == 3

    def test_checker_rejects_and_rolls_back(self, store):
        store.register_checker("at-most-2", lambda db: db.cardinality("E") <= 2)
        store.begin()
        store.insert("E", (3, 4))
        with pytest.raises(TransactionAborted):
            store.commit()
        assert store.cardinality("E") == 2
        assert store.stats.aborted == 1
        assert not store.in_transaction

    def test_run_helper_commits(self, store):
        ok = store.run(lambda s: s.insert("E", (5, 6)))
        assert ok
        assert store.contains("E", (5, 6))

    def test_run_helper_rolls_back_on_violation(self, store):
        store.register_checker("no-loops", lambda db: all(x != y for x, y in db.relation("E")))
        ok = store.run(lambda s: s.insert("E", (7, 7)))
        assert not ok
        assert not store.contains("E", (7, 7))

    def test_run_helper_propagates_unexpected_errors(self, store):
        def body(s):
            raise ValueError("boom")

        with pytest.raises(ValueError):
            store.run(body)
        assert not store.in_transaction

    def test_checker_names(self, store):
        store.register_checker("a", lambda db: True)
        store.register_checker("b", lambda db: True)
        assert store.checker_names == ("a", "b")
        store.clear_checkers()
        assert store.checker_names == ()


class TestLifecycle:
    """close() and the context-manager protocol over the storage engine."""

    def test_default_engine_follows_environment(self, store):
        import os

        durable = os.environ.get("REPRO_DURABLE", "").strip().lower()
        expected = "wal" if durable in ("on", "1", "true", "yes") else "memory"
        assert store.engine.name == expected
        assert store.storage_stats()["engine"] == expected

    def test_close_is_idempotent_and_blocks_new_transactions(self, store):
        store.close()
        assert store.closed
        store.close()                      # second close is a no-op
        with pytest.raises(StorageError):
            store.begin()

    def test_closed_store_still_serves_reads(self, store):
        store.close()
        assert store.contains("E", (1, 2))
        assert set(store.scan("E")) == {(1, 2), (2, 3)}
        assert store.snapshot() == Database.graph([(1, 2), (2, 3)])

    def test_close_rolls_back_open_transaction(self, store):
        store.begin()
        store.insert("E", (9, 9))
        store.close()
        assert not store.in_transaction
        assert not store.contains("E", (9, 9))
        assert store.stats.aborted == 1

    def test_context_manager_closes(self):
        with Store(GRAPH_SCHEMA, Database.graph([(1, 2)])) as store:
            assert not store.closed
        assert store.closed

    def test_context_manager_closes_on_error(self):
        with pytest.raises(ValueError):
            with Store(GRAPH_SCHEMA) as store:
                raise ValueError("boom")
        assert store.closed

    def test_engine_sees_each_effective_commit_batch(self):
        engine = MemoryEngine()
        store = Store(GRAPH_SCHEMA, engine=engine)
        store.begin(); store.insert("E", (1, 2)); store.commit()
        store.begin(); store.commit()                      # empty: no batch
        store.begin(); store.insert("E", (3, 4)); store.rollback()
        store.begin(); store.insert("E", (5, 6)); store.commit_unchecked()
        assert engine.stats()["batches"] == 2
        store.close()

    def test_memory_engine_stats_surface_is_uniform(self):
        store = Store(GRAPH_SCHEMA, engine=MemoryEngine())
        stats = store.storage_stats()
        for key in ("wal_appends", "fsyncs", "checkpoints", "recovered_batches"):
            assert stats[key] == 0
        store.close()
