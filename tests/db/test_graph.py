"""Tests for graph families, structural predicates and graph algorithms."""

import pytest

from repro.db import Database
from repro.db.graph import (
    all_graphs,
    all_graphs_up_to_iso,
    binary_tree,
    chain,
    chain_and_cycles,
    chain_component,
    complete_graph,
    connected_components,
    cycle,
    deterministic_transitive_closure,
    diagonal_graph,
    double_cycle_family,
    is_chain,
    is_chain_and_cycle_graph,
    is_simple_cycle,
    linear_order,
    random_graph,
    same_generation,
    single_cycle_family,
    star,
    transitive_closure,
    two_branch_tree,
    weakly_connected,
)


class TestGenerators:
    def test_chain_edges(self):
        g = chain(4)
        assert g.edges == frozenset({(0, 1), (1, 2), (2, 3)})
        assert chain(0).is_empty()
        assert chain(1).is_empty()

    def test_chain_custom_labels(self):
        g = chain(3, labels=["a", "b", "c"])
        assert g.edges == frozenset({("a", "b"), ("b", "c")})

    def test_cycle(self):
        g = cycle(3)
        assert g.edges == frozenset({(0, 1), (1, 2), (2, 0)})
        assert cycle(1).edges == frozenset({(0, 0)})
        with pytest.raises(ValueError):
            cycle(0)

    def test_chain_and_cycles(self):
        g = chain_and_cycles(3, [2, 4])
        assert len(g.nodes) == 9
        assert is_chain_and_cycle_graph(g)
        with pytest.raises(ValueError):
            chain_and_cycles(1)

    def test_two_branch_tree(self):
        g = two_branch_tree(2, 3)
        assert len(g.nodes) == 6
        # the root has out-degree 2
        assert g.out_degree(0) == 2
        with pytest.raises(ValueError):
            two_branch_tree(0, 2)

    def test_linear_order(self):
        g = linear_order(4)
        assert len(g.edges) == 6
        assert (0, 3) in g.edges
        assert (3, 0) not in g.edges

    def test_diagonal_and_complete(self):
        d = diagonal_graph([1, 2])
        assert d.edges == frozenset({(1, 1), (2, 2)})
        k = complete_graph([1, 2, 3])
        assert len(k.edges) == 6
        assert (1, 1) not in k.edges

    def test_cycle_families(self):
        assert len(single_cycle_family(4).nodes) == 8
        two = double_cycle_family(4)
        assert len(two.nodes) == 8
        assert len(connected_components(two)) == 2

    def test_binary_tree(self):
        t = binary_tree(3)
        assert len(t.edges) == 14  # 2^(d+1) - 2
        assert t.out_degree(1) == 2

    def test_star(self):
        s = star(4)
        assert s.out_degree(0) == 4
        assert all(s.in_degree(leaf) == 1 for leaf in range(1, 5))

    def test_random_graph_deterministic(self):
        assert random_graph(6, 0.4, seed=1) == random_graph(6, 0.4, seed=1)
        with pytest.raises(ValueError):
            random_graph(3, 1.5)

    def test_all_graphs_count(self):
        assert sum(1 for _ in all_graphs(2)) == 2 ** 4
        assert sum(1 for _ in all_graphs(2, loops=False)) == 2 ** 2

    def test_all_graphs_up_to_iso_smaller(self):
        full = sum(1 for _ in all_graphs(2))
        reduced = len(all_graphs_up_to_iso(2))
        assert reduced < full
        # representatives are pairwise non-isomorphic
        reps = all_graphs_up_to_iso(2)
        for i, a in enumerate(reps):
            for b in reps[i + 1:]:
                assert not a.is_isomorphic(b)


class TestStructuralPredicates:
    def test_is_chain(self):
        assert is_chain(chain(2))
        assert is_chain(chain(5))
        assert not is_chain(cycle(3))
        assert not is_chain(Database.graph([]))
        assert not is_chain(chain(3).union(chain(2, offset=10)))

    def test_is_simple_cycle(self):
        assert is_simple_cycle(cycle(3))
        assert is_simple_cycle(cycle(1))  # a loop is a degenerate simple cycle
        assert not is_simple_cycle(chain(3))
        assert not is_simple_cycle(cycle(2).union(cycle(3, offset=5)))

    def test_is_chain_and_cycle_graph(self):
        assert is_chain_and_cycle_graph(chain(2))
        assert is_chain_and_cycle_graph(chain_and_cycles(3, [4]))
        assert is_chain_and_cycle_graph(chain_and_cycles(2, [1, 3]))
        assert not is_chain_and_cycle_graph(cycle(4))
        assert not is_chain_and_cycle_graph(two_branch_tree(2, 2))
        assert not is_chain_and_cycle_graph(chain(2).union(chain(3, offset=10)))

    def test_chain_component(self):
        g = chain_and_cycles(4, [3])
        comp = chain_component(g)
        assert is_chain(comp)
        assert len(comp.nodes) == 4
        with pytest.raises(ValueError):
            chain_component(cycle(3))

    def test_connected_components(self):
        g = chain(3).union(cycle(3, offset=10))
        comps = connected_components(g)
        assert len(comps) == 2
        assert weakly_connected(chain(4))
        assert not weakly_connected(g)
        assert weakly_connected(Database.graph([]))


class TestGraphAlgorithms:
    def test_transitive_closure_of_chain_is_linear_order(self):
        for n in (2, 3, 5, 8):
            assert transitive_closure(chain(n)) == linear_order(n)

    def test_transitive_closure_cycle(self):
        g = transitive_closure(cycle(3))
        # every pair (including loops) is connected by a path
        assert len(g.edges) == 9

    def test_transitive_closure_idempotent(self):
        g = random_graph(5, 0.3, seed=3)
        once = transitive_closure(g)
        assert transitive_closure(once) == once

    def test_dtc_on_chain_equals_tc(self):
        g = chain(5)
        assert deterministic_transitive_closure(g) == transitive_closure(g)

    def test_dtc_respects_out_degree(self):
        # node 0 has out-degree 2, so no deterministic path may start there
        g = Database.graph([(0, 1), (0, 2), (1, 3)])
        dtc = deterministic_transitive_closure(g)
        assert (0, 3) not in dtc.edges
        assert (1, 3) in dtc.edges
        assert set(g.edges) <= set(dtc.edges)

    def test_same_generation_on_tree(self):
        g = two_branch_tree(2, 2)
        sg = same_generation(g)
        # nodes at equal depth in different branches are in the same generation
        assert (1, 3) in sg.edges and (3, 1) in sg.edges
        assert (2, 4) in sg.edges
        # different depths are not
        assert (1, 4) not in sg.edges
        # every node is in its own generation (loop)
        assert all((v, v) in sg.edges for v in g.nodes)

    def test_same_generation_isolated_counts(self):
        # In sg(G_{n,m}) the isolated (loop-only) nodes are the root plus the
        # |n - m| levels of the deeper branch with no counterpart, so there are
        # exactly |n - m| + 1 of them (the paper's "G_{n,m} |= beta_i iff
        # |n - m| = i - 1").
        def isolated_count(n, m):
            sg = same_generation(two_branch_tree(n, m))
            return sum(
                1
                for v in sg.nodes
                if (v, v) in sg.edges and sg.out_degree(v) == 1 and sg.in_degree(v) == 1
            )

        assert isolated_count(2, 4) == 3
        assert isolated_count(3, 3) == 1
        assert isolated_count(2, 3) == 2
