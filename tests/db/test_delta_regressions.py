"""Regression tests for Delta algebra edge cases and Store provenance routing.

These pin down behaviours the sharded engine and the transaction service
lean on: composing a delta with its inverse is the identity, cancelling
writes normalize away, ``Delta.between`` still answers across skip-link
boundaries once transient intermediates are gone, and the store's
``apply_database`` fast path degrades to a full diff (never a wrong answer)
when provenance cannot reach the target — e.g. after the cached snapshot was
rebuilt or the pinned ancestor fell out of the chain.
"""

from __future__ import annotations

import gc

from hypothesis import given

from repro.db import Database, Delta, GRAPH_SCHEMA, Store, chain, random_graph

from strategies import graph_deltas, graphs, maybe_seed


class TestComposeInverse:
    @maybe_seed
    @given(db=graphs(), delta=graph_deltas())
    def test_compose_of_inverse_is_identity(self, db, delta):
        effective = delta.normalized(db)
        roundtrip = effective.then(effective.inverse())
        assert roundtrip.is_empty()
        assert db.apply_delta(effective).apply_delta(effective.inverse()) == db

    @maybe_seed
    @given(db=graphs(), delta=graph_deltas())
    def test_inverse_of_inverse_is_the_delta(self, db, delta):
        effective = delta.normalized(db)
        assert effective.inverse().inverse() == effective

    def test_insert_then_delete_of_same_row_normalizes_empty(self):
        insert = Delta.insertion("E", (0, 1))
        delete = Delta.deletion("E", (0, 1))
        assert insert.then(delete).is_empty()
        assert delete.then(insert).is_empty()

    def test_insert_then_delete_through_a_database_returns_self(self):
        db = chain(3)
        after = db.apply_delta(Delta.insertion("E", (7, 8))).apply_delta(
            Delta.deletion("E", (7, 8))
        )
        assert after == db

    def test_insert_then_delete_in_store_log_does_not_bump_version(self):
        store = Store(GRAPH_SCHEMA, chain(3))
        before = store.version
        store.begin()
        assert store.insert("E", (7, 8))
        assert store.delete("E", (7, 8))
        store.commit_unchecked()
        assert store.version == before


class TestBetweenAcrossSkipLinks:
    def test_between_survives_dead_intermediates_via_skip_links(self):
        base = random_graph(8, 0.3, seed=4)
        current = base
        applied = Delta()
        for step in range(12):
            delta = Delta.insertion("E", (step, 100 + step)).normalized(current)
            applied = applied.then(delta)
            current = current.apply_delta(delta)
        # keep only the endpoints: every intermediate becomes garbage
        gc.collect()
        recovered = Delta.between(base, current)
        assert recovered is not None, "skip links should bridge dead intermediates"
        assert recovered == applied
        assert base.apply_delta(recovered) == current

    def test_between_beyond_the_skip_cap_falls_back_cleanly(self):
        """A composed delta past _SKIP_DELTA_CAP re-anchors; ``between`` may
        then return ``None`` once intermediates die — the documented fallback
        is ``from_databases``, which must agree with the true difference."""
        cap = Database._SKIP_DELTA_CAP
        base = Database.graph([])
        current = base
        step = 0
        while step * 2 <= cap + 64:
            delta = Delta.insertion("E", (step, step + 1))
            current = current.apply_delta(delta)
            step += 1
        gc.collect()
        recovered = Delta.between(base, current)
        exact = Delta.from_databases(base, current)
        if recovered is not None:
            assert recovered == exact
        assert base.apply_delta(exact) == current

    def test_between_unrelated_databases_is_none(self):
        assert Delta.between(chain(3), chain(4)) is None


class TestStoreProvenanceRouting:
    def test_apply_database_from_stale_pin_falls_back_to_full_diff(self):
        store = Store(GRAPH_SCHEMA, chain(4))
        _version, stale = store.pin()
        # the store advances: the stale pin is no longer the snapshot head
        store.begin()
        store.insert("E", (0, 50))
        store.commit_unchecked()
        target = stale.apply_delta(Delta.insertion("E", (1, 60)))
        store.begin()
        store.apply_database(target)
        store.commit_unchecked()
        # full-diff semantics: the store now equals target exactly —
        # including the *removal* of the (0, 50) edge target never had
        assert store.committed_snapshot() == target

    def test_apply_database_after_snapshot_rebuild_routes_correctly(self):
        seed = Store(GRAPH_SCHEMA, chain(4))
        seed.begin()
        seed.insert("E", (0, 50))
        seed.commit_unchecked()
        # a fresh store over the same rows: its snapshot is rebuilt from the
        # committed data and shares no provenance with the old chain
        rebuilt = Store(GRAPH_SCHEMA)
        rebuilt.begin()
        rebuilt.apply_database(seed.committed_snapshot())
        rebuilt.commit_unchecked()
        evicted = rebuilt.committed_snapshot()
        assert evicted == seed.committed_snapshot()
        target = evicted.apply_delta(Delta.insertion("E", (2, 70)))
        rebuilt.begin()
        rebuilt.apply_database(target)
        rebuilt.commit_unchecked()
        assert rebuilt.committed_snapshot() == target

    def test_provenance_fast_path_still_used_when_available(self):
        store = Store(GRAPH_SCHEMA, chain(4))
        snapshot = store.committed_snapshot()
        target = snapshot.apply_delta(Delta.insertion("E", (1, 60)))
        store.begin()
        store.apply_database(target)
        # the provenance chain covers the target: exactly one logged write
        assert store.cardinality() == chain(4).cardinality() + 1
        store.commit_unchecked()
        assert store.committed_snapshot() == target
