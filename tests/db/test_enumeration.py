"""Tests for the effective graph enumerations used by Theorem 5."""

import pytest

from repro.db import Database
from repro.db.enumeration import (
    GraphEnumeration,
    IsomorphismFreeEnumeration,
    count_graphs_on,
    enumerate_graphs,
)


class TestEnumerateGraphs:
    def test_first_graph_is_empty(self):
        gen = enumerate_graphs()
        assert next(gen).is_empty()

    def test_no_duplicates_in_prefix(self):
        enumeration = GraphEnumeration()
        prefix = enumeration.prefix(60)
        assert len({g.canonical_key() for g in prefix}) == 60

    def test_every_small_graph_appears(self):
        enumeration = GraphEnumeration()
        prefix = enumeration.prefix(600)
        seen = {g.canonical_key() for g in prefix}
        # all graphs over {0, 1} (16 of them) appear early in the enumeration
        from repro.db import all_graphs

        for g in all_graphs(2):
            assert g.canonical_key() in seen

    def test_indexing_is_stable(self):
        enumeration = GraphEnumeration()
        a = enumeration[10]
        b = enumeration[10]
        assert a == b

    def test_index_of_roundtrip(self):
        enumeration = GraphEnumeration()
        g = enumeration[25]
        assert enumeration.index_of(g, search_limit=100) == 25

    def test_negative_index_rejected(self):
        with pytest.raises(IndexError):
            GraphEnumeration()[-1]


class TestIsomorphismFreeEnumeration:
    def test_pairwise_non_isomorphic(self):
        enumeration = IsomorphismFreeEnumeration()
        prefix = enumeration.prefix(10)
        for i, a in enumerate(prefix):
            for b in prefix[i + 1:]:
                assert not a.is_isomorphic(b)

    def test_canonical_representative(self):
        enumeration = IsomorphismFreeEnumeration()
        target = Database.graph([("a", "b")])
        representative = enumeration.canonical_representative(target)
        assert representative.is_isomorphic(target)

    def test_prefix_validation(self):
        with pytest.raises(ValueError):
            IsomorphismFreeEnumeration().prefix(-1)


class TestCounting:
    def test_count_graphs_on(self):
        assert count_graphs_on(0) == 1
        assert count_graphs_on(2) == 16
        assert count_graphs_on(2, loops=False) == 4
        with pytest.raises(ValueError):
            count_graphs_on(-1)
