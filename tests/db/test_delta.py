"""The delta subsystem: ``Delta``, ``Database.apply_delta``, the store fast path.

The heart of the suite is the property ``apply_delta(D, delta)`` ==
``replay via insert/delete`` — the trusted fast-path constructor must be
observationally identical to the validated slow path, including every lazily
patched cache (active domain, hash indexes, canonical orderings, content
hash).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.db import (
    Database,
    DatabaseError,
    Delta,
    DeltaError,
    GRAPH_SCHEMA,
    Schema,
    Store,
    random_graph,
)
from repro.db.schema import RelationSchema


def edges(draw_nodes=4):
    node = st.integers(min_value=0, max_value=draw_nodes)
    return st.tuples(node, node)


def edge_sets(max_size=8):
    return st.frozensets(edges(), max_size=max_size)


# ---------------------------------------------------------------------------
# Delta algebra
# ---------------------------------------------------------------------------


class TestDelta:
    def test_empty_sets_are_dropped(self):
        delta = Delta(inserted={"E": []}, deleted={"E": [(1, 2)]})
        assert delta.touched() == {"E"}
        assert "E" not in delta.inserted
        assert len(delta) == 1

    def test_conflicting_row_raises(self):
        with pytest.raises(DeltaError):
            Delta(inserted={"E": [(1, 2)]}, deleted={"E": [(1, 2)]})

    def test_inverse_round_trips(self):
        db = Database.graph([(0, 1), (1, 2)])
        delta = Delta(inserted={"E": [(2, 3)]}, deleted={"E": [(0, 1)]})
        forward = db.apply_delta(delta)
        assert forward.apply_delta(delta.inverse()) == db

    @given(edge_sets(), edge_sets(), edge_sets())
    @settings(max_examples=60, deadline=None)
    def test_then_composition_matches_sequential_application(self, base, d1, d2):
        db = Database.graph(base)
        step1 = Delta(inserted={"E": d1}).normalized(db)
        mid = db.apply_delta(step1)
        step2 = Delta(deleted={"E": d2}).normalized(mid)
        end = mid.apply_delta(step2)
        assert db.apply_delta(step1.then(step2)) == end

    def test_from_databases_is_the_exact_difference(self):
        old = Database.graph([(0, 1), (1, 2)])
        new = Database.graph([(1, 2), (2, 3)])
        delta = Delta.from_databases(old, new)
        assert delta.inserted["E"] == {(2, 3)}
        assert delta.deleted["E"] == {(0, 1)}
        assert old.apply_delta(delta) == new

    def test_normalized_drops_ineffective_rows(self):
        db = Database.graph([(0, 1)])
        delta = Delta(inserted={"E": [(0, 1), (1, 2)]}, deleted={"E": [(5, 5)]})
        effective = delta.normalized(db)
        assert effective.inserted["E"] == {(1, 2)}
        assert "E" not in effective.deleted

    def test_normalized_validates_names_and_arity(self):
        db = Database.graph([(0, 1)])
        with pytest.raises(DeltaError):
            Delta(inserted={"R": [(1,)]}).normalized(db)
        with pytest.raises(Exception):
            Delta(inserted={"E": [(1, 2, 3)]}).normalized(db)

    def test_between_walks_provenance(self):
        base = Database.graph([(0, 1)])
        step1 = base.insert("E", (1, 2))
        step2 = step1.delete("E", (0, 1))
        delta = Delta.between(base, step2)
        assert delta is not None
        assert base.apply_delta(delta) == step2
        # unrelated databases have no chain
        assert Delta.between(Database.graph([(7, 8)]), step2) is None

    def test_between_survives_transient_intermediates(self):
        # the intermediate state dies immediately — the skip link must carry
        base = Database.graph([(0, 1)])
        final = base.insert("E", (1, 2)).insert("E", (2, 3)).delete("E", (0, 1))
        delta = Delta.between(base, final)
        assert delta is not None
        assert base.apply_delta(delta) == final


class TestDeltaWire:
    """The picklable wire form the process executor ships shard deltas in."""

    @given(edge_sets(), edge_sets())
    @settings(max_examples=60, deadline=None)
    def test_wire_round_trip_preserves_application(self, ins, dels):
        ins = ins - dels
        delta = Delta(inserted={"E": ins}, deleted={"E": dels})
        back = Delta.from_wire(delta.to_wire())
        assert back.inserted == delta.inserted
        assert back.deleted == delta.deleted
        base = Database.graph(dels)  # every deleted row present, so it applies
        assert base.apply_delta(back) == base.apply_delta(delta)

    @given(edge_sets(), edge_sets())
    @settings(max_examples=60, deadline=None)
    def test_wire_is_deterministic_and_picklable(self, ins, dels):
        import pickle

        ins = ins - dels
        delta = Delta(inserted={"E": ins}, deleted={"E": dels})
        wire = delta.to_wire()
        # same content -> same wire bytes: the wire form is canonical
        assert Delta(inserted={"E": set(ins)}, deleted={"E": set(dels)}).to_wire() == wire
        assert pickle.loads(pickle.dumps(wire)) == wire

    def test_wire_version_is_checked(self):
        wire = Delta(inserted={"E": [(0, 1)]}).to_wire()
        with pytest.raises(DeltaError):
            Delta.from_wire(("delta/0",) + wire[1:])
        with pytest.raises(DeltaError):
            Delta.from_wire("not a wire form")


class TestDeltaBytes:
    """The canonical bytes form the WAL frames: round-trip or reject."""

    @given(edge_sets(), edge_sets())
    @settings(max_examples=60, deadline=None)
    def test_bytes_round_trip(self, ins, dels):
        ins = ins - dels
        delta = Delta(inserted={"E": ins}, deleted={"E": dels})
        back = Delta.from_bytes(delta.to_bytes())
        assert back.inserted == delta.inserted
        assert back.deleted == delta.deleted

    @given(edge_sets(), edge_sets())
    @settings(max_examples=60, deadline=None)
    def test_bytes_are_canonical(self, ins, dels):
        ins = ins - dels
        a = Delta(inserted={"E": ins}, deleted={"E": dels}).to_bytes()
        b = Delta(inserted={"E": set(ins)}, deleted={"E": set(dels)}).to_bytes()
        assert a == b

    def test_value_codec_covers_mixed_scalars(self):
        from repro.db.delta import decode_wire_value, encode_wire_value

        values = (None, True, False, 0, -1, 2**80, 3.25, "naïve", b"\x00\xff",
                  ("nested", (1, 2.0, "three")), ())
        for value in values:
            assert decode_wire_value(encode_wire_value(value)) == value

    @given(st.binary(max_size=64))
    @settings(max_examples=120, deadline=None)
    def test_arbitrary_bytes_never_misparse(self, junk):
        """Random bytes either decode to *some* value or raise DeltaError —
        never any other exception (the reject-cleanly framing contract)."""
        from repro.db.delta import decode_wire_value

        try:
            decode_wire_value(junk)
        except DeltaError:
            pass

    @given(edge_sets(), edge_sets(), st.data())
    @settings(max_examples=80, deadline=None)
    def test_truncated_or_flipped_bytes_reject_cleanly(self, ins, dels, data):
        ins = ins - dels
        blob = bytearray(Delta(inserted={"E": ins}, deleted={"E": dels}).to_bytes())
        if data.draw(st.booleans(), label="truncate?"):
            cut = data.draw(st.integers(0, max(0, len(blob) - 1)))
            mutated = bytes(blob[:cut])
        else:
            position = data.draw(st.integers(0, len(blob) - 1))
            blob[position] ^= 1 << data.draw(st.integers(0, 7))
            mutated = bytes(blob)
        try:
            back = Delta.from_bytes(mutated)
        except DeltaError:
            return
        # a mutation may still decode (e.g. a flipped digit): the result must
        # at least be a structurally valid Delta
        assert isinstance(back, Delta)

    def test_trailing_bytes_rejected(self):
        blob = Delta(inserted={"E": [(0, 1)]}).to_bytes()
        with pytest.raises(DeltaError):
            Delta.from_bytes(blob + b"\x00")

    def test_non_wire_payload_rejected(self):
        from repro.db.delta import encode_wire_value

        with pytest.raises(DeltaError):
            Delta.from_bytes(encode_wire_value("not a delta wire tuple"))
        with pytest.raises(DeltaError):
            Delta.from_bytes(encode_wire_value((1, 2, 3)))


# ---------------------------------------------------------------------------
# Database.apply_delta
# ---------------------------------------------------------------------------


class TestApplyDelta:
    @given(edge_sets(12), edge_sets(), edge_sets())
    @settings(max_examples=80, deadline=None)
    def test_apply_delta_equals_insert_delete_replay(self, base, ins, dels):
        ins = ins - dels  # a delta may not insert and delete the same row
        db = Database.graph(base)
        via_delta = db.apply_delta(Delta(inserted={"E": ins}, deleted={"E": dels}))
        via_replay = db.insert("E", *ins).delete("E", *dels)
        assert via_delta == via_replay
        # and every derived observation agrees with a fresh construction
        fresh = Database.graph((base | ins) - dels)
        assert via_delta == fresh
        assert via_delta.active_domain == fresh.active_domain
        assert hash(via_delta) == hash(fresh)
        assert via_delta.canonical_key() == fresh.canonical_key()
        assert dict(via_delta.index("E", 0)) == dict(fresh.index("E", 0))

    def test_noop_delta_returns_self(self):
        db = Database.graph([(0, 1)])
        assert db.apply_delta(Delta(inserted={"E": [(0, 1)]})) is db
        assert db.apply_delta(Delta()) is db

    def test_untouched_relations_are_shared_not_copied(self):
        schema = Schema.of(E=2, P=1)
        db = Database(schema, {"E": [(0, 1)], "P": [(5,)]})
        db.index("P", 0)
        db.canonical_key()
        child = db.apply_delta(Delta(inserted={"E": [(1, 2)]}))
        assert child.relation("P") is db.relation("P")
        assert child.index("P", 0) is db.index("P", 0)
        assert child._sorted_rows["P"] is db._sorted_rows["P"]

    def test_indexes_are_patched_not_rebuilt(self):
        db = Database.graph([(0, 1), (0, 2), (1, 2)])
        db.index("E", 0)  # build on the parent
        child = db.apply_delta(
            Delta(inserted={"E": [(0, 3)]}, deleted={"E": [(0, 1)]})
        )
        patched = child._indexes[("E", (0,))]  # present without rebuilding
        rebuilt = Database.graph([(0, 2), (0, 3), (1, 2)]).index("E", 0)
        assert dict(patched) == dict(rebuilt)

    def test_active_domain_is_patched_incrementally(self):
        db = Database.graph([(0, 1), (1, 2)])
        assert db.active_domain == {0, 1, 2}  # forces the counts
        grown = db.insert("E", (2, 9))
        assert grown._domain == {0, 1, 2, 9}  # patched eagerly, not recomputed
        shrunk = grown.delete("E", (0, 1))
        assert shrunk.active_domain == {1, 2, 9}  # 0 left the domain
        back = shrunk.delete("E", (2, 9))
        assert back.active_domain == {1, 2}

    def test_provenance_recorded_and_weak(self):
        db = Database.graph([(0, 1)])
        child = db.insert("E", (1, 2))
        parent, delta = child.delta_base()
        assert parent is db
        assert delta.inserted["E"] == {(1, 2)}
        del db, parent
        import gc

        gc.collect()
        assert child.delta_base() is None  # streams retain nothing


# ---------------------------------------------------------------------------
# satellite regressions: trusted with_relation, map_domain injectivity
# ---------------------------------------------------------------------------


class TestFunctionalUpdateRegressions:
    def test_with_relation_does_not_revalidate_unchanged_relations(self, monkeypatch):
        schema = Schema.of(E=2, P=1)
        db = Database(schema, {"E": [(i, i + 1) for i in range(50)], "P": [(0,)]})
        calls = []
        original = RelationSchema.validate_tuple

        def counting(self, row):
            calls.append(self.name)
            return original(self, row)

        monkeypatch.setattr(RelationSchema, "validate_tuple", counting)
        db.with_relation("P", [(1,), (2,)])
        assert "E" not in calls  # the 50 untouched rows were not re-validated

    def test_insert_validates_only_the_delta(self, monkeypatch):
        db = Database.graph([(i, i + 1) for i in range(50)])
        calls = []
        original = RelationSchema.validate_tuple

        def counting(self, row):
            calls.append(tuple(row))
            return original(self, row)

        monkeypatch.setattr(RelationSchema, "validate_tuple", counting)
        db.insert("E", (100, 101))
        assert len(calls) == 1

    def test_map_domain_permutation_still_works(self):
        db = Database.graph([(1, 2), (2, 3)])
        renamed = db.map_domain({1: 2, 2: 3, 3: 1})
        assert renamed.edges == {(2, 3), (3, 1)}

    def test_map_domain_merge_collision_raises(self):
        db = Database.graph([(1, 2), (2, 3)])
        with pytest.raises(DatabaseError, match="injective"):
            db.map_domain({1: 9, 2: 9})

    def test_map_domain_collision_with_unmapped_element_raises(self):
        db = Database.graph([(1, 2)])
        # 1 -> 2 collides with the untouched domain element 2
        with pytest.raises(DatabaseError, match="injective"):
            db.map_domain({1: 2})

    def test_map_domain_may_reuse_values_outside_the_domain(self):
        db = Database.graph([(1, 2)])
        renamed = db.map_domain({1: 7, 2: 8})
        assert renamed.edges == {(7, 8)}


# ---------------------------------------------------------------------------
# the transactional store's delta fast path
# ---------------------------------------------------------------------------


class TestStoreDeltaPath:
    def test_snapshot_is_cached_between_writes(self):
        store = Store(GRAPH_SCHEMA, Database.graph([(0, 1)]))
        assert store.snapshot() is store.snapshot()

    def test_snapshot_patches_with_the_write_log(self):
        store = Store(GRAPH_SCHEMA, Database.graph([(0, 1)]))
        before = store.snapshot()
        store.begin()
        store.insert("E", (1, 2))
        store.delete("E", (0, 1))
        after = store.snapshot()
        assert after == Database.graph([(1, 2)])
        parent, delta = after.delta_base()
        assert parent is before
        assert delta.inserted["E"] == {(1, 2)}
        assert delta.deleted["E"] == {(0, 1)}
        store.commit_unchecked()

    def test_snapshot_after_rollback_restores_the_original_content(self):
        store = Store(GRAPH_SCHEMA, Database.graph([(0, 1)]))
        original = store.snapshot()
        store.begin()
        store.insert("E", (1, 2))
        mid = store.snapshot()  # snapshot inside the transaction
        assert mid == Database.graph([(0, 1), (1, 2)])
        store.rollback()
        assert store.snapshot() == original

    def test_apply_database_uses_the_provenance_chain(self):
        initial = Database.graph([(0, 1), (1, 2)])
        store = Store(GRAPH_SCHEMA, initial)
        state = store.snapshot()
        target = state.insert("E", (2, 3)).delete("E", (0, 1))
        store.begin()
        store.apply_database(target)
        assert store.snapshot() == target
        store.rollback()
        assert store.snapshot() == initial

    def test_apply_database_falls_back_to_diffing_unrelated_targets(self):
        store = Store(GRAPH_SCHEMA, Database.graph([(0, 1)]))
        store.snapshot()
        store.begin()
        store.apply_database(Database.graph([(5, 6)]))
        store.commit_unchecked()
        assert store.snapshot() == Database.graph([(5, 6)])

    def test_store_apply_delta_logs_every_write(self):
        store = Store(GRAPH_SCHEMA, Database.graph([(0, 1)]))
        store.begin()
        changed = store.apply_delta(
            Delta(inserted={"E": [(1, 2), (0, 1)]}, deleted={"E": [(9, 9)]})
        )
        assert changed == 1  # only (1, 2) was effective
        store.rollback()
        assert store.snapshot() == Database.graph([(0, 1)])

    def test_long_transaction_stream_stays_consistent(self):
        import random

        rng = random.Random(3)
        store = Store(GRAPH_SCHEMA, random_graph(6, 0.4, seed=1))
        mirror = {tuple(e) for e in store.snapshot().edges}
        for _ in range(120):
            a, b = rng.randrange(8), rng.randrange(8)
            store.begin()
            if rng.random() < 0.6:
                store.insert("E", (a, b))
                mirror.add((a, b))
            else:
                store.delete("E", (a, b))
                mirror.discard((a, b))
            if rng.random() < 0.25:
                store.rollback()
                mirror = {tuple(e) for e in store.snapshot().edges}
            else:
                store.commit_unchecked()
            assert store.snapshot() == Database.graph(mirror)
