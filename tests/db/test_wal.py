"""The durable WAL engine: framing, corruption tolerance, checkpoints.

The contract under test is the one ``docs/durability.md`` states: a record
either round-trips exactly or is *rejected* — a torn write, truncated tail or
bit flip must never replay garbage, and recovery always stops at the last
valid record.  The corpus here mutates real log bytes (hypothesis picks the
cut points and flipped bits), which is how the crash-point analysis in
``repro.db.wal`` stays honest.
"""

from __future__ import annotations

import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.db import (
    Database,
    GRAPH_SCHEMA,
    Store,
    StorageEngineError,
    WalStorageEngine,
)
from repro.db.wal import _HEADER, _KIND_BATCH, _frame, _parse_frames

from strategies import maybe_seed, update_streams


def wal_path(directory) -> str:
    return os.path.join(str(directory), "wal.log")


def make_store(directory, **engine_kwargs) -> Store:
    engine = WalStorageEngine(str(directory), **engine_kwargs)
    return Store(GRAPH_SCHEMA, engine=engine)


def commit_edges(store: Store, *edges) -> None:
    store.begin()
    for edge in edges:
        store.insert("E", edge)
    store.commit_unchecked()


class TestFraming:
    @given(payloads=st.lists(st.binary(max_size=64), max_size=6))
    @settings(max_examples=60, deadline=None)
    def test_frames_round_trip(self, payloads):
        data = b"".join(_frame(_KIND_BATCH, p) for p in payloads)
        frames, end = _parse_frames(data)
        assert end == len(data)
        assert [payload for _kind, payload, _end in frames] == payloads

    @given(
        payloads=st.lists(st.binary(max_size=32), min_size=1, max_size=4),
        data=st.data(),
    )
    @settings(max_examples=120, deadline=None)
    def test_single_bit_flip_is_detected(self, payloads, data):
        blob = bytearray(b"".join(_frame(_KIND_BATCH, p) for p in payloads))
        position = data.draw(st.integers(0, len(blob) - 1))
        bit = data.draw(st.integers(0, 7))
        blob[position] ^= 1 << bit
        frames, end = _parse_frames(bytes(blob))
        # every frame returned must be byte-identical to an original frame:
        # the flip either lands behind `end` or kills its frame entirely
        assert end <= len(blob)
        intact = {p for p in payloads}
        for _kind, payload, _frame_end in frames:
            assert payload in intact

    @given(
        payloads=st.lists(st.binary(max_size=32), min_size=1, max_size=4),
        data=st.data(),
    )
    @settings(max_examples=80, deadline=None)
    def test_truncation_keeps_only_whole_frames(self, payloads, data):
        blob = b"".join(_frame(_KIND_BATCH, p) for p in payloads)
        cut = data.draw(st.integers(0, len(blob)))
        frames, end = _parse_frames(blob[:cut])
        assert end <= cut
        boundaries = []
        offset = 0
        for payload in payloads:
            offset += _HEADER.size + len(payload)
            boundaries.append(offset)
        # the parsed prefix is exactly the whole frames that fit before `cut`
        expected = sum(1 for b in boundaries if b <= cut)
        assert len(frames) == expected

    def test_impossible_length_header_rejected(self):
        # a corrupted length field must not trigger a giant allocation
        bogus = _HEADER.pack(b"RW", _KIND_BATCH, (1 << 31), 0)
        frames, end = _parse_frames(bogus + b"x" * 16)
        assert frames == [] and end == 0


class TestRecovery:
    def test_fresh_directory_recovers_nothing(self, tmp_path):
        with make_store(tmp_path) as store:
            assert store.version == 0
            assert store.snapshot() == Database.graph([])

    def test_commits_survive_crash(self, tmp_path):
        store = make_store(tmp_path)
        commit_edges(store, (1, 2))
        commit_edges(store, (2, 3))
        expected = store.snapshot()
        store.engine.crash()

        with make_store(tmp_path) as reborn:
            assert reborn.snapshot() == expected
            assert reborn.version == 2
            assert reborn.storage_stats()["recovered_batches"] == 2

    def test_initial_database_survives_via_bootstrap(self, tmp_path):
        engine = WalStorageEngine(str(tmp_path))
        store = Store(GRAPH_SCHEMA, Database.graph([(7, 8)]), engine=engine)
        # no commit at all: the bootstrap checkpoint alone must carry it
        store.engine.crash()
        with make_store(tmp_path) as reborn:
            assert reborn.snapshot() == Database.graph([(7, 8)])

    def test_recovered_store_keeps_committing(self, tmp_path):
        store = make_store(tmp_path)
        commit_edges(store, (1, 2))
        store.engine.crash()

        second = make_store(tmp_path)
        commit_edges(second, (2, 3))
        second.engine.crash()

        with make_store(tmp_path) as third:
            assert third.snapshot() == Database.graph([(1, 2), (2, 3)])
            assert third.version == 2

    def test_torn_tail_is_dropped_and_log_reusable(self, tmp_path):
        store = make_store(tmp_path)
        commit_edges(store, (1, 2))
        commit_edges(store, (3, 4))
        store.engine.crash()
        # a torn final append: garbage after the last durable record
        with open(wal_path(tmp_path), "ab") as handle:
            handle.write(b"\x13" * 23)

        second = make_store(tmp_path)
        assert second.snapshot() == Database.graph([(1, 2), (3, 4)])
        assert second.storage_stats()["tail_dropped_bytes"] == 23
        # the truncated log accepts new appends and stays contiguous
        commit_edges(second, (5, 6))
        second.engine.crash()
        with make_store(tmp_path) as third:
            assert third.snapshot() == Database.graph([(1, 2), (3, 4), (5, 6)])

    def test_recovery_stops_at_mid_log_corruption(self, tmp_path):
        store = make_store(tmp_path)
        commit_edges(store, (1, 2))
        with open(wal_path(tmp_path), "rb") as handle:
            one_batch = handle.read()
        commit_edges(store, (3, 4))
        commit_edges(store, (5, 6))
        store.engine.crash()
        # flip one byte inside the *second* record's payload
        with open(wal_path(tmp_path), "r+b") as handle:
            handle.seek(len(one_batch) + _HEADER.size + 1)
            byte = handle.read(1)
            handle.seek(len(one_batch) + _HEADER.size + 1)
            handle.write(bytes((byte[0] ^ 0xFF,)))

        with make_store(tmp_path) as reborn:
            # everything after the first bad record is unrecoverable tail
            assert reborn.snapshot() == Database.graph([(1, 2)])
            assert reborn.version == 1

    def test_version_gap_stops_replay(self, tmp_path):
        store = make_store(tmp_path)
        commit_edges(store, (1, 2))
        commit_edges(store, (3, 4))
        commit_edges(store, (5, 6))
        store.engine.crash()
        # surgically remove the middle record: replay must stop before the
        # gap rather than apply version 3 on top of version 1
        with open(wal_path(tmp_path), "rb") as handle:
            frames, _ = _parse_frames(handle.read())
        first, second, third = (f[2] for f in frames)
        with open(wal_path(tmp_path), "r+b") as handle:
            data = handle.read()
            handle.seek(0)
            handle.write(data[:first] + data[second:third])
            handle.truncate()

        with make_store(tmp_path) as reborn:
            assert reborn.snapshot() == Database.graph([(1, 2)])
            assert reborn.version == 1


class TestCheckpoints:
    def test_checkpoint_truncates_log_and_recovers(self, tmp_path):
        store = make_store(tmp_path, checkpoint_interval=3)
        for i in range(7):
            commit_edges(store, (i, i + 1))
        stats = store.storage_stats()
        assert stats["checkpoints"] == 2           # after batches 3 and 6
        assert stats["checkpoint_version"] == 6
        # only the post-checkpoint tail lives in the log
        assert os.path.getsize(wal_path(tmp_path)) > 0
        expected = store.snapshot()
        store.engine.crash()

        with make_store(tmp_path, checkpoint_interval=3) as reborn:
            assert reborn.snapshot() == expected
            assert reborn.version == 7
            # recovery replayed only the single post-checkpoint batch
            assert reborn.storage_stats()["recovered_batches"] == 1
            assert reborn.storage_stats()["checkpoint_version"] == 6

    def test_checkpoint_env_knob_warns_on_garbage(self, tmp_path, monkeypatch):
        from repro.db.wal import DEFAULT_CHECKPOINT_INTERVAL, WAL_CHECKPOINT_ENV

        monkeypatch.setenv(WAL_CHECKPOINT_ENV, "16")
        store = make_store(tmp_path / "good")
        assert store.engine.checkpoint_interval == 16
        store.close()
        # garbage warns (like REPRO_SHARDS) instead of a silent default —
        # the operator asked for a custom interval and must hear it dropped
        monkeypatch.setenv(WAL_CHECKPOINT_ENV, "often")
        with pytest.warns(RuntimeWarning, match="REPRO_WAL_CHECKPOINT"):
            fallback = make_store(tmp_path / "bad")
        assert fallback.engine.checkpoint_interval == DEFAULT_CHECKPOINT_INTERVAL
        fallback.close()

    def test_old_checkpoints_are_deleted(self, tmp_path):
        store = make_store(tmp_path, checkpoint_interval=2)
        for i in range(8):
            commit_edges(store, (i, i + 1))
        snaps = [f for f in os.listdir(tmp_path) if f.endswith(".snap")]
        assert len(snaps) == 1
        store.close()

    def test_corrupt_checkpoint_falls_back_to_replay(self, tmp_path):
        store = make_store(tmp_path, checkpoint_interval=0)  # no checkpoints
        for i in range(4):
            commit_edges(store, (i, i + 1))
        expected = store.snapshot()
        store.engine.crash()
        # plant a corrupt checkpoint claiming a newer version: recovery must
        # reject it (bad frame) and fall back to pure log replay
        bogus = os.path.join(str(tmp_path), "checkpoint-0000000000000099.snap")
        with open(bogus, "wb") as handle:
            handle.write(b"not a checkpoint at all")

        with make_store(tmp_path) as reborn:
            assert reborn.snapshot() == expected
            assert reborn.version == 4

    def test_stale_log_prefix_after_checkpoint_crash(self, tmp_path):
        """Crash between checkpoint write and log truncation: replay skips."""
        store = make_store(tmp_path, checkpoint_interval=0)
        commit_edges(store, (1, 2))
        commit_edges(store, (3, 4))
        with open(wal_path(tmp_path), "rb") as handle:
            full_log = handle.read()
        # checkpoint at version 2, then restore the untruncated log — exactly
        # the on-disk state of a crash after os.replace, before truncate
        store.engine.checkpoint(
            {"E": frozenset({(1, 2), (3, 4)})}, store.version
        )
        store.engine.crash()
        with open(wal_path(tmp_path), "wb") as handle:
            handle.write(full_log)

        with make_store(tmp_path) as reborn:
            assert reborn.snapshot() == Database.graph([(1, 2), (3, 4)])
            assert reborn.version == 2
            assert reborn.storage_stats()["recovered_batches"] == 0


class TestEngineContract:
    def test_non_contiguous_commit_rejected(self, tmp_path):
        engine = WalStorageEngine(str(tmp_path))
        store = Store(GRAPH_SCHEMA, engine=engine)
        commit_edges(store, (1, 2))
        from repro.db import Delta

        with pytest.raises(StorageEngineError):
            engine.commit_batch(Delta(inserted={"E": {(9, 9)}}), version=5)
        store.close()

    def test_closed_engine_refuses_appends(self, tmp_path):
        store = make_store(tmp_path)
        store.close()
        from repro.db import Delta

        with pytest.raises(StorageEngineError):
            store.engine.commit_batch(Delta(inserted={"E": {(1, 2)}}), 1)

    def test_unknown_fsync_policy_rejected(self, tmp_path):
        with pytest.raises(StorageEngineError):
            WalStorageEngine(str(tmp_path), fsync="sometimes")

    @pytest.mark.parametrize("policy", ["commit", "close", "never"])
    def test_every_fsync_policy_recovers(self, tmp_path, policy):
        store = make_store(tmp_path, fsync=policy)
        commit_edges(store, (1, 2), (2, 3))
        expected = store.snapshot()
        store.engine.crash()
        with make_store(tmp_path, fsync=policy) as reborn:
            assert reborn.snapshot() == expected

    def test_fsync_counters_follow_policy(self, tmp_path):
        eager = make_store(tmp_path / "eager", fsync="commit")
        commit_edges(eager, (1, 2))
        commit_edges(eager, (2, 3))
        assert eager.storage_stats()["fsyncs"] >= 2
        eager.close()

        lazy = make_store(tmp_path / "lazy", fsync="never")
        commit_edges(lazy, (1, 2))
        assert lazy.storage_stats()["fsyncs"] == 0
        lazy.close()

    def test_ephemeral_engine_cleans_its_directory(self):
        engine = WalStorageEngine.ephemeral()
        directory = engine.directory
        store = Store(GRAPH_SCHEMA, engine=engine)
        commit_edges(store, (1, 2))
        assert os.path.isdir(directory)
        store.close()
        assert not os.path.exists(directory)

    def test_wal_appends_counter(self, tmp_path):
        store = make_store(tmp_path)
        commit_edges(store, (1, 2))
        store.begin()
        store.commit_unchecked()  # empty commit: no append
        commit_edges(store, (2, 3))
        stats = store.storage_stats()
        assert stats["wal_appends"] == 2
        store.close()


class TestRandomStreams:
    """The hypothesis corpus: random histories, random corruption."""

    @maybe_seed
    @given(stream=update_streams(length=8))
    @settings(max_examples=40, deadline=None)
    def test_crash_recovery_replays_any_history(self, stream):
        import tempfile
        import shutil

        directory = tempfile.mkdtemp(prefix="repro-waltest-")
        try:
            store = Store(GRAPH_SCHEMA, engine=WalStorageEngine(directory))
            for delta in stream:
                store.begin()
                store.apply_delta(delta)
                store.commit_unchecked()
            expected = store.snapshot()
            version = store.version
            store.engine.crash()

            reborn = Store(GRAPH_SCHEMA, engine=WalStorageEngine(directory))
            assert reborn.snapshot() == expected
            assert reborn.version == version
            reborn.engine.crash()
        finally:
            shutil.rmtree(directory, ignore_errors=True)

    @maybe_seed
    @given(stream=update_streams(length=6), data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_arbitrary_tail_corruption_never_breaks_recovery(self, stream, data):
        """Cut the log anywhere, then scribble garbage: recovery still yields
        a *prefix* of the committed history, never an error, never garbage."""
        import tempfile
        import shutil

        directory = tempfile.mkdtemp(prefix="repro-waltest-")
        try:
            store = Store(GRAPH_SCHEMA, engine=WalStorageEngine(directory))
            states = [store.snapshot()]
            for delta in stream:
                store.begin()
                store.apply_delta(delta)
                store.commit_unchecked()
                states.append(store.snapshot())
            store.engine.crash()

            path = os.path.join(directory, "wal.log")
            with open(path, "rb") as handle:
                blob = handle.read()
            cut = data.draw(st.integers(0, len(blob)))
            junk = data.draw(st.binary(max_size=40))
            with open(path, "wb") as handle:
                handle.write(blob[:cut] + junk)

            reborn = Store(GRAPH_SCHEMA, engine=WalStorageEngine(directory))
            assert any(reborn.snapshot() == s for s in states), (
                "recovered state must be one of the committed prefixes"
            )
            reborn.engine.crash()
        finally:
            shutil.rmtree(directory, ignore_errors=True)
