"""Tests for the relational algebra engine."""

import pytest

from repro.db import Database, GRAPH_SCHEMA, Schema
from repro.db.algebra import (
    AlgebraError,
    And,
    ColumnEqualsColumn,
    ColumnEqualsConstant,
    ColumnNotEqualsColumn,
    ConstantRelation,
    Not,
    Or,
    Projection,
    Relation,
    Selection,
    evaluate,
)


@pytest.fixture
def graph():
    return Database.graph([(1, 2), (2, 3), (3, 1), (1, 1)])


class TestBasicExpressions:
    def test_relation_reference(self, graph):
        assert evaluate(Relation("E"), graph) == graph.edges

    def test_projection(self, graph):
        sources = evaluate(Relation("E").project(0), graph)
        assert sources == frozenset({(1,), (2,), (3,)})

    def test_projection_duplicates_columns(self, graph):
        doubled = evaluate(Relation("E").project(0, 0), graph)
        assert (1, 1) in doubled

    def test_projection_out_of_range(self, graph):
        with pytest.raises(AlgebraError):
            evaluate(Relation("E").project(5), graph)

    def test_selection_equality(self, graph):
        loops = evaluate(Relation("E").select(ColumnEqualsColumn(0, 1)), graph)
        assert loops == frozenset({(1, 1)})

    def test_selection_constant(self, graph):
        from_one = evaluate(Relation("E").select(ColumnEqualsConstant(0, 1)), graph)
        assert from_one == frozenset({(1, 2), (1, 1)})

    def test_selection_out_of_range(self, graph):
        with pytest.raises(AlgebraError):
            evaluate(Relation("E").select(ColumnEqualsColumn(0, 7)), graph)

    def test_product(self, graph):
        nodes = Relation("E").project(0).union(Relation("E").project(1))
        pairs = evaluate(nodes.product(nodes), graph)
        assert len(pairs) == 9

    def test_union_difference_intersection(self, graph):
        e = Relation("E")
        loops = e.select(ColumnEqualsColumn(0, 1))
        assert evaluate(e.difference(loops), graph) == graph.edges - {(1, 1)}
        assert evaluate(e.intersect(loops), graph) == frozenset({(1, 1)})
        assert evaluate(e.union(loops), graph) == graph.edges

    def test_set_operation_arity_mismatch(self, graph):
        with pytest.raises(AlgebraError):
            evaluate(Relation("E").union(Relation("E").project(0)), graph)

    def test_constant_relation(self, graph):
        const = ConstantRelation([(9, 9)])
        assert evaluate(Relation("E").union(const), graph) == graph.edges | {(9, 9)}
        with pytest.raises(AlgebraError):
            ConstantRelation([(1,), (1, 2)])


class TestConditions:
    def test_boolean_combinations(self, graph):
        cond = And(ColumnEqualsConstant(0, 1), Not(ColumnEqualsColumn(0, 1)))
        rows = evaluate(Relation("E").select(cond), graph)
        assert rows == frozenset({(1, 2)})

    def test_or_condition(self, graph):
        cond = Or(ColumnEqualsConstant(0, 2), ColumnEqualsConstant(0, 3))
        rows = evaluate(Relation("E").select(cond), graph)
        assert rows == frozenset({(2, 3), (3, 1)})

    def test_not_equals(self, graph):
        rows = evaluate(Relation("E").select(ColumnNotEqualsColumn(0, 1)), graph)
        assert (1, 1) not in rows
        assert len(rows) == 3


class TestErrors:
    def test_evaluate_requires_expression(self, graph):
        with pytest.raises(AlgebraError):
            evaluate("not an expression", graph)

    def test_multi_relation_schema(self):
        schema = Schema.of(R=1, S=1)
        db = Database(schema, {"R": [(1,), (2,)], "S": [(2,)]})
        assert evaluate(Relation("R").difference(Relation("S")), db) == frozenset({(1,)})
