"""Unit tests for the hash-partitioned sharded database layer."""

from __future__ import annotations

import gc

import pytest

from repro.db import (
    Database,
    DatabaseError,
    Delta,
    GRAPH_SCHEMA,
    RelationSchema,
    Schema,
    ShardedDatabase,
    Store,
    chain,
    random_graph,
    shard_of,
    shards_from_env,
    split_delta,
)

LEDGER = Schema(
    [
        RelationSchema("Account", 1),
        RelationSchema("Owner", 2),
        RelationSchema("Balance", 2),
    ]
)


class TestRouting:
    def test_routing_is_stable_and_in_range(self):
        for value in (0, 1, 2, "alice", ("a", 1), None):
            for n in (1, 2, 4, 7):
                index = shard_of(value, n)
                assert 0 <= index < n
                assert index == shard_of(value, n)  # deterministic

    def test_single_shard_routes_everything_to_zero(self):
        assert shard_of("anything", 1) == 0

    def test_cross_type_equal_values_route_identically(self):
        """Row equality is Python equality: 0 == 0.0 == False-adjacent types
        must share a home shard, or deltas routed by one spelling would miss
        rows stored under the other."""
        big = 2**62  # past the 2**61-1 boundary where hash(int) reduces
        for n in (2, 3, 4, 7):
            assert shard_of(0, n) == shard_of(0.0, n)
            assert shard_of(1, n) == shard_of(True, n)
            assert shard_of(0, n) == shard_of(False, n)
            assert shard_of(2, n) == shard_of(2.0, n)
            assert shard_of(big, n) == shard_of(float(big), n)
            assert shard_of((1, "a"), n) == shard_of((1.0, "a"), n)
            assert shard_of(frozenset({1, 2}), n) == shard_of(
                frozenset({2.0, 1.0}), n
            )

    def test_bool_keys_take_the_int_path(self):
        """Regression: ``bool`` is an ``int`` subtype (``True == 1``,
        ``hash(True) == hash(1)``), so bool keys must route exactly as the
        ints they equal — on the int fast path, not by falling through to
        the generic digest — or equal keys could land on different shards
        and break split_delta's disjoint-routing invariant."""
        for n in (2, 3, 4, 7, 16):
            assert shard_of(True, n) == shard_of(1, n)
            assert shard_of(False, n) == shard_of(0, n)
        delta = Delta(
            inserted={"E": [(True, 5), (1, 7), (False, 2), (0, 9), (2, 1)]},
            deleted={"E": [(True, 3)]},
        )
        parts = split_delta(delta, 4)
        for index, sub in parts.items():
            for name in sub.touched():
                for row in sub.rows_in(name):
                    assert shard_of(row[0], 4) == index
                    assert shard_of(int(row[0]), 4) == index
        # every row about entity 1 — bool-keyed or int-keyed — shares a shard
        homes = {
            index
            for index, sub in parts.items()
            if any(row[0] == 1 for row in sub.rows_in("E"))
        }
        assert len(homes) == 1

    def test_cross_type_equal_rows_delete_cleanly(self):
        db = ShardedDatabase.graph([(0.0, 2)], num_shards=4)
        db.shards  # materialise so the delta takes the incremental path
        emptied = db.delete("E", (0, 2))
        assert emptied.is_empty()
        assert all(s.is_empty() for s in emptied.shards)

    def test_split_delta_partitions_by_first_column(self):
        delta = Delta(
            inserted={"E": [(0, 1), (1, 2), (2, 3)]},
            deleted={"E": [(3, 4)]},
        )
        parts = split_delta(delta, 4)
        seen = Delta()
        for index, sub in parts.items():
            for name in sub.touched():
                for row in sub.rows_in(name):
                    assert shard_of(row[0], 4) == index
            seen = seen.then(sub)
        assert seen == delta

    def test_shards_from_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_SHARDS", raising=False)
        assert shards_from_env(default=3) == 3
        monkeypatch.setenv("REPRO_SHARDS", "8")
        assert shards_from_env() == 8
        monkeypatch.setenv("REPRO_SHARDS", "nope")
        with pytest.warns(RuntimeWarning):
            assert shards_from_env(default=2) == 2
        monkeypatch.setenv("REPRO_SHARDS", "0")
        with pytest.warns(RuntimeWarning):
            assert shards_from_env(default=2) == 2


class TestPartitioning:
    def test_partition_is_a_disjoint_cover(self):
        db = ShardedDatabase.from_database(random_graph(12, 0.4, seed=5), 4)
        shards = db.shards
        assert len(shards) == 4
        union = frozenset().union(*(s.relation("E") for s in shards))
        assert union == db.relation("E")
        assert sum(len(s.relation("E")) for s in shards) == len(db.relation("E"))
        for index, shard in enumerate(shards):
            for row in shard.relation("E"):
                assert shard_of(row[0], 4) == index

    def test_merged_view_equals_plain_database(self):
        plain = chain(9)
        sharded = ShardedDatabase.graph(plain.edges, num_shards=3)
        assert sharded == plain
        assert hash(sharded) == hash(plain)
        assert sharded.active_domain == plain.active_domain
        assert sharded.canonical_key() == plain.canonical_key()

    def test_invalid_shard_count_rejected(self):
        with pytest.raises(DatabaseError):
            ShardedDatabase(GRAPH_SCHEMA, {}, num_shards=0)

    def test_from_database_is_idempotent_on_matching_count(self):
        sharded = ShardedDatabase.graph(chain(4).edges, num_shards=2)
        assert ShardedDatabase.from_database(sharded, 2) is sharded
        rewrapped = ShardedDatabase.from_database(sharded, 4)
        assert rewrapped.num_shards == 4
        assert rewrapped == sharded

    def test_multi_relation_schema_partitions_every_relation(self):
        db = ShardedDatabase(
            LEDGER,
            {
                "Account": [(i,) for i in range(10)],
                "Owner": [(i, f"u{i}") for i in range(10)],
                "Balance": [(i, 100 * i) for i in range(10)],
            },
            num_shards=4,
        )
        # co-partitioning: every relation's rows about account i live on the
        # same shard — the invariant co-partitioned joins rely on
        for i in range(10):
            home = db.shard_index("Account", (i,))
            assert db.shard_index("Owner", (i, f"u{i}")) == home
            assert db.shard_index("Balance", (i, 100 * i)) == home
            shard = db.shards[home]
            assert (i,) in shard.relation("Account")
            assert (i, f"u{i}") in shard.relation("Owner")

    def test_shard_sizes_sum_to_cardinality(self):
        db = ShardedDatabase.from_database(random_graph(10, 0.5, seed=2), 4)
        assert sum(db.shard_sizes()) == db.cardinality()


class TestFunctionalUpdates:
    def test_apply_delta_preserves_shardedness_and_shares_untouched(self):
        base = ShardedDatabase.from_database(random_graph(12, 0.4, seed=9), 4)
        base.shards  # materialise the decomposition
        delta = Delta.insertion("E", (0, 99))
        child = base.apply_delta(delta)
        assert isinstance(child, ShardedDatabase)
        assert child.num_shards == 4
        touched = shard_of(0, 4)
        for index, (before, after) in enumerate(zip(base.shards, child.shards)):
            if index == touched:
                assert before is not after
                assert (0, 99) in after.relation("E")
            else:
                assert before is after

    def test_touched_shard_keeps_its_own_provenance(self):
        base = ShardedDatabase.from_database(chain(8), 4)
        base.shards
        child = base.apply_delta(Delta.insertion("E", (0, 99)))
        touched = shard_of(0, 4)
        link = child.shards[touched].delta_base()
        assert link is not None
        parent, step = link
        assert parent is base.shards[touched]
        assert step.inserted["E"] == frozenset({(0, 99)})

    def test_insert_delete_union_difference_stay_sharded(self):
        db = ShardedDatabase.from_database(chain(5), 2)
        assert isinstance(db.insert("E", (7, 8)), ShardedDatabase)
        assert isinstance(db.delete("E", (0, 1)), ShardedDatabase)
        other = Database.graph([(7, 8)])
        assert isinstance(db.union(other), ShardedDatabase)
        assert isinstance(db.difference(other), ShardedDatabase)

    def test_lazy_parent_stays_lazy_and_rebuilds_correctly(self):
        base = ShardedDatabase.from_database(chain(6), 4)
        # no .shards access on base: the child partitions on demand
        child = base.apply_delta(Delta.insertion("E", (5, 6)))
        shards = child.shards
        union = frozenset().union(*(s.relation("E") for s in shards))
        assert union == child.relation("E")

    def test_map_domain_reshards(self):
        db = ShardedDatabase.from_database(chain(4), 4)
        renamed = db.map_domain({i: i + 100 for i in range(5)})
        assert isinstance(renamed, ShardedDatabase)
        assert renamed.num_shards == 4
        for index, shard in enumerate(renamed.shards):
            for row in shard.relation("E"):
                assert shard_of(row[0], 4) == index

    def test_restrict_domain_reshards(self):
        db = ShardedDatabase.from_database(chain(6), 4)
        restricted = db.restrict_domain(range(4))
        assert isinstance(restricted, ShardedDatabase)
        assert restricted == chain(6).restrict_domain(range(4))


class TestShardedStore:
    def test_snapshots_are_sharded_and_chain(self):
        store = Store(GRAPH_SCHEMA, chain(6), shards=4)
        first = store.committed_snapshot()
        assert isinstance(first, ShardedDatabase)
        store.begin()
        store.insert("E", (0, 50))
        store.commit_unchecked()
        second = store.committed_snapshot()
        assert isinstance(second, ShardedDatabase)
        assert second.contains("E", (0, 50))
        link = second.delta_base()
        assert link is not None and link[0] is first

    def test_store_without_initial_materialises_sharded(self):
        store = Store(GRAPH_SCHEMA, shards=2)
        store.begin()
        store.insert("E", (1, 2))
        store.commit_unchecked()
        snapshot = store.committed_snapshot()
        assert isinstance(snapshot, ShardedDatabase)
        assert snapshot.num_shards == 2

    def test_plain_store_is_unchanged(self):
        store = Store(GRAPH_SCHEMA, chain(3))
        assert not isinstance(store.committed_snapshot(), ShardedDatabase)


class TestInterningPrerequisites:
    """Content-equality behaviours the backend's shard interning relies on."""

    def test_content_equal_shards_hash_alike_after_rebuild(self):
        a = ShardedDatabase.from_database(random_graph(10, 0.4, seed=3), 4)
        b = ShardedDatabase.from_database(random_graph(10, 0.4, seed=3), 4)
        for left, right in zip(a.shards, b.shards):
            assert left == right and hash(left) == hash(right)

    def test_shards_survive_parent_collection(self):
        db = ShardedDatabase.from_database(chain(5), 2)
        shards = db.shards
        del db
        gc.collect()
        assert frozenset().union(*(s.relation("E") for s in shards))
