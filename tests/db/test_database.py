"""Tests for the immutable Database value object."""

import pytest

from repro.db import Database, DatabaseError, GRAPH_SCHEMA, Schema


class TestConstruction:
    def test_empty(self):
        db = Database.empty()
        assert db.is_empty()
        assert db.active_domain == frozenset()
        assert db.cardinality() == 0

    def test_graph_constructor(self):
        db = Database.graph([(1, 2), (2, 3)])
        assert db.edges == frozenset({(1, 2), (2, 3)})
        assert db.nodes == frozenset({1, 2, 3})

    def test_unknown_relation_rejected(self):
        with pytest.raises(DatabaseError):
            Database(GRAPH_SCHEMA, {"R": [(1,)]})

    def test_arity_mismatch_rejected(self):
        with pytest.raises(Exception):
            Database(GRAPH_SCHEMA, {"E": [(1, 2, 3)]})

    def test_duplicate_tuples_collapse(self):
        db = Database.graph([(1, 2), (1, 2)])
        assert db.cardinality("E") == 1

    def test_multi_relation_schema(self):
        schema = Schema.of(E=2, Account=2)
        db = Database(schema, {"E": [(1, 2)], "Account": [("alice", 10)]})
        assert db.cardinality() == 2
        assert db.active_domain == frozenset({1, 2, "alice", 10})


class TestAccessors:
    def test_contains(self):
        db = Database.graph([(1, 2)])
        assert db.contains("E", (1, 2))
        assert not db.contains("E", (2, 1))

    def test_getitem(self):
        db = Database.graph([(1, 2)])
        assert db["E"] == frozenset({(1, 2)})
        with pytest.raises(DatabaseError):
            db["Missing"]

    def test_degrees(self):
        db = Database.graph([(1, 2), (1, 3), (2, 3)])
        assert db.out_degree(1) == 2
        assert db.in_degree(3) == 2
        assert db.successors(1) == frozenset({2, 3})
        assert db.predecessors(3) == frozenset({1, 2})

    def test_iteration_yields_facts(self):
        db = Database.graph([(1, 2), (0, 1)])
        facts = list(db)
        assert ("E", (0, 1)) in facts
        assert ("E", (1, 2)) in facts
        assert len(facts) == 2

    def test_len(self):
        assert len(Database.graph([(1, 2), (2, 1)])) == 2


class TestFunctionalUpdates:
    def test_insert_returns_new_database(self):
        db = Database.graph([(1, 2)])
        db2 = db.insert("E", (2, 3))
        assert db.cardinality("E") == 1
        assert db2.cardinality("E") == 2
        assert db2.contains("E", (2, 3))

    def test_delete(self):
        db = Database.graph([(1, 2), (2, 3)])
        db2 = db.delete("E", (1, 2))
        assert db2.edges == frozenset({(2, 3)})
        assert db.cardinality("E") == 2

    def test_with_relation(self):
        db = Database.graph([(1, 2)])
        db2 = db.with_relation("E", [(5, 6)])
        assert db2.edges == frozenset({(5, 6)})

    def test_map_domain(self):
        db = Database.graph([(1, 2), (2, 3)])
        renamed = db.map_domain({1: "a", 2: "b", 3: "c"})
        assert renamed.edges == frozenset({("a", "b"), ("b", "c")})

    def test_map_domain_partial(self):
        db = Database.graph([(1, 2)])
        renamed = db.map_domain({1: 9})
        assert renamed.edges == frozenset({(9, 2)})

    def test_restrict_domain(self):
        db = Database.graph([(1, 2), (2, 3), (3, 1)])
        restricted = db.restrict_domain({1, 2})
        assert restricted.edges == frozenset({(1, 2)})

    def test_union_and_difference(self):
        a = Database.graph([(1, 2)])
        b = Database.graph([(2, 3)])
        assert a.union(b).edges == frozenset({(1, 2), (2, 3)})
        assert a.union(b).difference(b).edges == frozenset({(1, 2)})

    def test_union_schema_mismatch(self):
        a = Database.graph([(1, 2)])
        other = Database(Schema.of(R=1), {"R": [(1,)]})
        with pytest.raises(DatabaseError):
            a.union(other)


class TestEqualityAndIsomorphism:
    def test_equality(self):
        assert Database.graph([(1, 2)]) == Database.graph([(1, 2)])
        assert Database.graph([(1, 2)]) != Database.graph([(2, 1)])

    def test_hashable(self):
        graphs = {Database.graph([(1, 2)]), Database.graph([(1, 2)]), Database.graph([])}
        assert len(graphs) == 2

    def test_isomorphic_chains(self):
        a = Database.graph([(1, 2), (2, 3)])
        b = Database.graph([("x", "y"), ("y", "z")])
        assert a.is_isomorphic(b)

    def test_not_isomorphic(self):
        a = Database.graph([(1, 2), (2, 3)])
        b = Database.graph([(1, 2), (3, 2)])
        assert not a.is_isomorphic(b)

    def test_empty_isomorphic(self):
        assert Database.empty().is_isomorphic(Database.empty())
