"""Injected storage faults against the WAL engine and the store above it.

The contract under test: an append/fsync failure during ``commit_batch``
fails the commit with the in-memory store **unmutated** and the log clean
(a retry lands contiguously); a checkpoint that dies mid write-temp→rename
never leaves a half-written snapshot where recovery could load it —
recovery falls back to the previous checkpoint plus a longer tail replay.
"""

from __future__ import annotations

import os

import pytest

from repro import faults
from repro.db import GRAPH_SCHEMA, Store, StorageEngineError, WalStorageEngine


@pytest.fixture(autouse=True)
def clean_hooks():
    faults.uninstall()
    yield
    faults.uninstall()


def make_store(directory, **engine_kwargs) -> Store:
    engine = WalStorageEngine(str(directory), **engine_kwargs)
    return Store(GRAPH_SCHEMA, engine=engine)


def commit_edges(store: Store, *edges) -> None:
    store.begin()
    for edge in edges:
        store.insert("E", edge)
    store.commit_unchecked()


def recovered_edges(directory) -> frozenset:
    with make_store(directory) as store:
        return frozenset(store.committed_snapshot().relation("E"))


class TestAppendFaults:
    def test_fsync_fault_fails_commit_and_leaves_store_unmutated(self, tmp_path):
        # pin the per-commit fsync policy: an ambient REPRO_WAL_FSYNC=close
        # would move the fsync (and the injected fault) out of the commit
        store = make_store(tmp_path, fsync="commit")
        commit_edges(store, (1, 2))
        version_before = store.version

        faults.install(faults.FaultPlan().site("wal.fsync", exc="oserror", limit=1))
        store.begin()
        store.insert("E", (3, 4))
        with pytest.raises(StorageEngineError):
            store.commit_unchecked()
        # the failed commit was never acked: nothing moved
        assert store.in_transaction  # still open, caller decides
        store.rollback()
        assert store.version == version_before
        assert (3, 4) not in store.committed_snapshot().relation("E")

        # the engine is still usable: the next commit is contiguous
        faults.uninstall()
        commit_edges(store, (5, 6))
        assert store.version == version_before + 1
        store.engine.crash()
        assert recovered_edges(tmp_path) == frozenset({(1, 2), (5, 6)})

    def test_torn_append_is_truncated_on_recovery(self, tmp_path):
        store = make_store(tmp_path)
        commit_edges(store, (1, 2))
        faults.install(faults.FaultPlan().site("wal.append.torn", limit=1))
        store.begin()
        store.insert("E", (3, 4))
        with pytest.raises(StorageEngineError):
            store.commit_unchecked()
        store.rollback()
        faults.uninstall()
        store.engine.crash()
        # recovery keeps every acked commit and only the acked commits
        assert recovered_edges(tmp_path) == frozenset({(1, 2)})

    def test_disk_full_fails_commit(self, tmp_path):
        store = make_store(tmp_path)
        faults.install(faults.FaultPlan().site("wal.append", exc="disk_full"))
        store.begin()
        store.insert("E", (1, 2))
        with pytest.raises(StorageEngineError):
            store.commit_unchecked()
        store.rollback()

    def test_transient_append_fault_then_retry_succeeds(self, tmp_path):
        store = make_store(tmp_path)
        faults.install(faults.FaultPlan().site("wal.append", exc="oserror", hits=(1,)))
        store.begin()
        store.insert("E", (1, 2))
        with pytest.raises(StorageEngineError):
            store.commit_unchecked()
        store.rollback()
        # same store object, second try: the log took no garbage from try one
        commit_edges(store, (1, 2))
        store.engine.crash()
        assert recovered_edges(tmp_path) == frozenset({(1, 2)})


class TestOrphanFrames:
    def test_fsync_fault_leaves_no_orphan_frame_behind(self, tmp_path):
        # regression: a fault *after* the frame bytes reached the file (the
        # fsync step) used to leave the un-acked frame in the log; the retry
        # then appended a second frame under the same version and recovery
        # replayed the orphan instead of the acked retry
        store = make_store(tmp_path, fsync="commit")
        faults.install(
            faults.FaultPlan().site("wal.fsync", exc="storage", hits=(1,))
        )
        store.begin()
        store.insert("E", (1, 2))
        with pytest.raises(StorageEngineError):
            store.commit_unchecked()
        store.rollback()
        commit_edges(store, (3, 4))  # the retry: same version, new content
        store.engine.crash()
        with make_store(tmp_path) as reborn:
            assert frozenset(reborn.committed_snapshot().relation("E")) == {(3, 4)}
            assert reborn.storage_stats()["orphan_frames"] == 0

    def test_recovery_skips_orphan_duplicate_and_keeps_the_acked_frame(self, tmp_path):
        # defense in depth: even if an orphan frame survives on disk (e.g.
        # the post-failure truncate itself failed on a sick disk), recovery
        # must treat the LAST frame of a duplicated version as the acked one
        from repro.db.delta import Delta, encode_wire_value
        from repro.db.wal import _KIND_BATCH, _frame

        store = make_store(tmp_path)
        commit_edges(store, (1, 2))  # version 1, acked
        store.engine.crash()
        # hand-craft the failure shape: an orphan version-2 frame (never
        # acked) followed by the acked version-2 retry with other content
        orphan = encode_wire_value((2, Delta(inserted={"E": [(6, 6)]}).to_wire()))
        acked = encode_wire_value((2, Delta(inserted={"E": [(7, 8)]}).to_wire()))
        with open(tmp_path / "wal.log", "ab") as handle:
            handle.write(_frame(_KIND_BATCH, orphan))
            handle.write(_frame(_KIND_BATCH, acked))
        with make_store(tmp_path) as reborn:
            recovered = frozenset(reborn.committed_snapshot().relation("E"))
            assert recovered == {(1, 2), (7, 8)}
            assert (6, 6) not in recovered
            assert reborn.storage_stats()["orphan_frames"] == 1
            assert reborn.version == 2


class TestCheckpointFaults:
    def test_checkpoint_write_fault_falls_back_to_previous_checkpoint(self, tmp_path):
        engine = WalStorageEngine(str(tmp_path), checkpoint_interval=2)
        store = Store(GRAPH_SCHEMA, engine=engine)
        # two commits: interval reached, checkpoint 1 succeeds
        commit_edges(store, (1, 2))
        commit_edges(store, (2, 3))
        assert engine.stats()["checkpoints"] == 1
        good_checkpoint = engine.stats()["checkpoint_version"]

        # two more commits with the checkpoint write poisoned: the commits
        # themselves must stay acked, the snapshot attempt must fail closed
        faults.install(
            faults.FaultPlan().site("wal.checkpoint.write", exc="oserror")
        )
        commit_edges(store, (3, 4))
        commit_edges(store, (4, 5))  # wants_checkpoint -> injected failure
        version_after = store.version
        stats = engine.stats()
        assert stats["checkpoint_failures"] >= 1
        assert stats["checkpoint_version"] == good_checkpoint
        # no half-written snapshot survives the failure
        assert not [f for f in os.listdir(tmp_path) if f.endswith(".tmp")]

        faults.uninstall()
        store.engine.crash()
        # recovery: previous checkpoint + longer tail replay = full state
        with make_store(tmp_path) as recovered:
            assert recovered.version == version_after
            assert frozenset(recovered.committed_snapshot().relation("E")) == {
                (1, 2), (2, 3), (3, 4), (4, 5),
            }
            recovered_stats = recovered.storage_stats()
            assert recovered_stats["checkpoint_version"] == good_checkpoint
            assert recovered_stats["recovered_batches"] > 0

    def test_checkpoint_rename_fault_never_exposes_half_snapshot(self, tmp_path):
        engine = WalStorageEngine(str(tmp_path), checkpoint_interval=1)
        store = Store(GRAPH_SCHEMA, engine=engine)
        faults.install(
            faults.FaultPlan().site("wal.checkpoint.rename", exc="oserror")
        )
        commit_edges(store, (1, 2))
        commit_edges(store, (2, 3))
        assert engine.stats()["checkpoint_failures"] >= 2
        assert engine.stats()["checkpoints"] == 0
        assert not [f for f in os.listdir(tmp_path) if f.endswith(".tmp")]
        faults.uninstall()
        store.engine.crash()
        # everything replays from the log alone
        assert recovered_edges(tmp_path) == frozenset({(1, 2), (2, 3)})

    def test_failed_checkpoint_does_not_fail_the_acked_commit(self, tmp_path):
        engine = WalStorageEngine(str(tmp_path), checkpoint_interval=1)
        store = Store(GRAPH_SCHEMA, engine=engine)
        faults.install(
            faults.FaultPlan().site("wal.checkpoint.write", exc="oserror", limit=1)
        )
        # the commit triggering the poisoned checkpoint must NOT raise: the
        # batch is already durable in the log when the snapshot attempt dies
        commit_edges(store, (1, 2))
        assert store.version == 1
        assert engine.stats()["checkpoint_failures"] == 1
        store.engine.crash()
        assert recovered_edges(tmp_path) == frozenset({(1, 2)})
