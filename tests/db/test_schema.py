"""Tests for relational schemas."""

import pytest

from repro.db.schema import GRAPH_SCHEMA, RelationSchema, Schema, SchemaError


class TestRelationSchema:
    def test_basic_construction(self):
        rel = RelationSchema("R", 3)
        assert rel.name == "R"
        assert rel.arity == 3
        assert rel.attributes == ("c0", "c1", "c2")

    def test_named_attributes(self):
        rel = RelationSchema("Account", 2, ("owner", "balance"))
        assert rel.position_of("balance") == 1
        assert rel.position_of("owner") == 0

    def test_unknown_attribute(self):
        rel = RelationSchema("R", 1)
        with pytest.raises(SchemaError):
            rel.position_of("missing")

    def test_zero_arity_rejected(self):
        with pytest.raises(SchemaError):
            RelationSchema("R", 0)

    def test_negative_arity_rejected(self):
        with pytest.raises(SchemaError):
            RelationSchema("R", -1)

    def test_empty_name_rejected(self):
        with pytest.raises(SchemaError):
            RelationSchema("", 1)

    def test_attribute_count_mismatch(self):
        with pytest.raises(SchemaError):
            RelationSchema("R", 2, ("only-one",))

    def test_duplicate_attributes_rejected(self):
        with pytest.raises(SchemaError):
            RelationSchema("R", 2, ("a", "a"))

    def test_validate_tuple(self):
        rel = RelationSchema("R", 2)
        assert rel.validate_tuple([1, 2]) == (1, 2)
        with pytest.raises(SchemaError):
            rel.validate_tuple((1, 2, 3))

    def test_str(self):
        assert str(RelationSchema("E", 2)) == "E/2"


class TestSchema:
    def test_of_constructor(self):
        schema = Schema.of(E=2, P=1)
        assert schema.relation_names == ("E", "P")
        assert schema.arity("E") == 2
        assert schema.arity("P") == 1

    def test_graph_schema(self):
        assert "E" in GRAPH_SCHEMA
        assert GRAPH_SCHEMA["E"].arity == 2
        assert Schema.graph() is GRAPH_SCHEMA

    def test_empty_schema_rejected(self):
        with pytest.raises(SchemaError):
            Schema([])

    def test_duplicate_relation_rejected(self):
        with pytest.raises(SchemaError):
            Schema([RelationSchema("R", 1), RelationSchema("R", 2)])

    def test_lookup_missing(self):
        with pytest.raises(SchemaError):
            GRAPH_SCHEMA["Missing"]
        assert GRAPH_SCHEMA.get("Missing") is None

    def test_extend(self):
        extended = GRAPH_SCHEMA.extend(RelationSchema("P", 1))
        assert set(extended.relation_names) == {"E", "P"}
        # original untouched
        assert GRAPH_SCHEMA.relation_names == ("E",)

    def test_restrict(self):
        schema = Schema.of(A=1, B=2, C=3)
        restricted = schema.restrict(["A", "C"])
        assert restricted.relation_names == ("A", "C")
        with pytest.raises(SchemaError):
            schema.restrict(["A", "Z"])

    def test_equality_and_hash(self):
        a = Schema.of(E=2)
        b = Schema.of(E=2)
        c = Schema.of(E=3)
        assert a == b
        assert hash(a) == hash(b)
        assert a != c
        assert len({a, b, c}) == 2

    def test_iteration_and_len(self):
        schema = Schema.of(A=1, B=2)
        assert len(schema) == 2
        assert [rel.name for rel in schema] == ["A", "B"]

    def test_non_relation_schema_rejected(self):
        with pytest.raises(SchemaError):
            Schema(["not a relation"])
