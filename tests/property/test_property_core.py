"""Property-based tests (hypothesis) for the core weakest-precondition machinery
and the database substrate invariants."""

from __future__ import annotations

import hypothesis.strategies as st
from hypothesis import assume, given, settings

from repro.db import Database, chain, transitive_closure
from repro.logic import Atom, Eq, Exists, Forall, Formula, Not, Var, evaluate, make_and, make_or
from repro.core import (
    ChainTransaction,
    ChainWpcCalculator,
    PrerelationSpec,
    WpcCalculator,
)
from repro.transactions import (
    DeleteWhere,
    FOProgram,
    InsertTuple,
    InsertWhere,
    SetRelation,
)

VARIABLES = ["x", "y"]

# shared graph generator (tests/strategies.py), bounded to the small node
# set the exhaustive wpc sweeps below can afford
from strategies import graphs as _shared_graphs


def graphs(max_nodes: int = 3) -> st.SearchStrategy[Database]:
    return _shared_graphs(max_value=max_nodes - 1, max_edges=6)


def quantifier_free(max_leaves: int = 4) -> st.SearchStrategy[Formula]:
    variable = st.sampled_from(VARIABLES + ["z"])
    base = st.one_of(
        st.builds(lambda a, b: Atom("E", a, b), variable, variable),
        st.builds(lambda a, b: Eq(Var(a), Var(b)), variable, variable),
    )
    return st.recursive(
        base,
        lambda children: st.one_of(
            st.builds(Not, children),
            st.builds(lambda a, b: make_and(a, b), children, children),
            st.builds(lambda a, b: make_or(a, b), children, children),
        ),
        max_leaves=max_leaves,
    )


def constraints() -> st.SearchStrategy[Formula]:
    """Random FO sentences of quantifier rank <= 3 over the graph schema."""

    def close(matrix: Formula) -> Formula:
        closed = matrix
        for i, name in enumerate(sorted(matrix.free_variables())):
            closed = (Exists if i % 2 == 0 else Forall)(name, closed)
        return closed

    return quantifier_free().map(close)


def simple_programs() -> st.SearchStrategy[FOProgram]:
    """Random one/two statement Qian-style programs over the graph schema."""
    condition = quantifier_free()

    insert_where = st.builds(
        lambda c: InsertWhere("E", ("x", "y"), _close_condition(c)), condition
    )
    delete_where = st.builds(
        lambda c: DeleteWhere("E", ("x", "y"), _close_condition(c)), condition
    )
    set_relation = st.builds(
        lambda c: SetRelation("E", ("x", "y"), _close_condition(c)), condition
    )
    insert_tuple = st.builds(
        lambda a, b: InsertTuple("E", 100 + a, 100 + b),
        st.integers(0, 2),
        st.integers(0, 2),
    )
    statement = st.one_of(insert_where, delete_where, set_relation, insert_tuple)
    return st.lists(statement, min_size=1, max_size=2).map(
        lambda statements: FOProgram(statements, name="random-program")
    )


def _close_condition(matrix: Formula) -> Formula:
    """Bind every free variable other than x, y existentially."""
    closed = matrix
    for name in sorted(matrix.free_variables() - {"x", "y"}):
        closed = Exists(name, closed)
    return closed


@settings(max_examples=40, deadline=None)
@given(program=simple_programs(), graph=graphs())
def test_compiled_prerelation_matches_operational_semantics(program, graph):
    spec = PrerelationSpec.from_fo_program(program)
    assert spec.as_transaction().apply(graph) == program.apply(graph)


@settings(max_examples=30, deadline=None)
@given(program=simple_programs(), constraint=constraints(), graph=graphs())
def test_wpc_roundtrip_for_random_programs(program, constraint, graph):
    """D |= wpc(T, alpha)  iff  T(D) |= alpha, for random programs/constraints/graphs."""
    spec = PrerelationSpec.from_fo_program(program)
    precondition = WpcCalculator(spec).wpc(constraint)
    transaction = spec.as_transaction()
    assert evaluate(precondition, graph) == evaluate(constraint, transaction.apply(graph))


@settings(max_examples=25, deadline=None)
@given(constraint=constraints(), graph=graphs())
def test_chain_transaction_wpc_roundtrip(constraint, graph):
    transaction = ChainTransaction()
    precondition = ChainWpcCalculator(transaction).wpc(constraint)
    assert evaluate(precondition, graph) == evaluate(constraint, transaction.apply(graph))


@settings(max_examples=50, deadline=None)
@given(graph=graphs(4))
def test_transitive_closure_is_idempotent_and_monotone(graph):
    closed = transitive_closure(graph)
    assert set(graph.edges) <= set(closed.edges)
    assert transitive_closure(closed) == closed


@settings(max_examples=50, deadline=None)
@given(graph=graphs(4), data=st.data())
def test_database_insert_delete_roundtrip(graph, data):
    a = data.draw(st.integers(0, 3))
    b = data.draw(st.integers(0, 3))
    row = (a, b)
    inserted = graph.insert("E", row)
    assert inserted.contains("E", row)
    if not graph.contains("E", row):
        assert inserted.delete("E", row) == graph


@settings(max_examples=50, deadline=None)
@given(graph=graphs(4))
def test_map_domain_by_bijection_preserves_isomorphism_invariants(graph):
    mapping = {v: f"n{v}" for v in graph.active_domain}
    renamed = graph.map_domain(mapping)
    assert len(renamed.edges) == len(graph.edges)
    assert len(renamed.active_domain) == len(graph.active_domain)
    from repro.fmt import are_isomorphic

    assert are_isomorphic(graph, renamed)
