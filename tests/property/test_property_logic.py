"""Property-based tests (hypothesis) for the logic layer.

Random first-order sentences over the graph schema are generated together with
random small graphs; the properties assert that the syntactic transformations
(NNF, prenex, simplification, counting expansion, substitution) preserve
semantics and the syntactic measures behave as documented.
"""

from __future__ import annotations

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.db import Database
from repro.logic import (
    Atom,
    CountingExists,
    Eq,
    Exists,
    Forall,
    Formula,
    Not,
    Var,
    counting_to_first_order,
    evaluate,
    make_and,
    make_or,
    negation_normal_form,
    is_in_nnf,
    prenex_normal_form,
    simplify,
)

VARIABLES = ["x", "y", "z"]

# shared grammar-based generators (tests/strategies.py): the syntactic
# transformations under test here take the constant-free FO fragment, so the
# counting quantifier and constants are switched off
from strategies import formulas as _shared_formulas
from strategies import graphs
from strategies import sentences as _shared_sentences


def formulas(max_depth: int = 3) -> st.SearchStrategy[Formula]:
    # no true/false leaves: the rank/NNF shape properties below are about
    # pushing negations, which constant folding would trivialise away
    return _shared_formulas(counting=False, constants=False, nullary=False)


def sentences(max_depth: int = 3) -> st.SearchStrategy[Formula]:
    """Close random formulas by quantifying their free variables existentially."""
    return _shared_sentences(counting=False, constants=False, nullary=False)


@settings(max_examples=60, deadline=None)
@given(sentence=sentences(), graph=graphs())
def test_nnf_preserves_truth(sentence, graph):
    nnf = negation_normal_form(sentence)
    assert is_in_nnf(nnf)
    assert evaluate(sentence, graph) == evaluate(nnf, graph)


@settings(max_examples=60, deadline=None)
@given(sentence=sentences(), graph=graphs())
def test_prenex_preserves_truth(sentence, graph):
    # prenexing relies on the classical quantifier-pull equivalences
    # (e.g. phi & forall x psi == forall x (phi & psi)), which hold only
    # over NON-empty domains; under active-domain semantics the empty
    # database genuinely distinguishes a sentence from its prenex form
    # (Iff(exists x phi, exists x phi) is true there, its prenex is not)
    if graph.is_empty():
        graph = graph.insert("E", (0, 0))
    prenex = prenex_normal_form(sentence)
    assert evaluate(sentence, graph) == evaluate(prenex, graph)


@settings(max_examples=60, deadline=None)
@given(sentence=sentences(), graph=graphs())
def test_simplify_preserves_truth_on_nonempty(sentence, graph):
    if graph.is_empty():
        graph = graph.insert("E", (0, 0))
    reduced = simplify(sentence)
    assert evaluate(sentence, graph) == evaluate(reduced, graph)


@settings(max_examples=60, deadline=None)
@given(sentence=sentences())
def test_simplify_never_increases_size(sentence):
    assert simplify(sentence).size() <= sentence.size()


@settings(max_examples=60, deadline=None)
@given(sentence=sentences())
def test_nnf_preserves_quantifier_rank(sentence):
    # pushing negations never changes the nesting depth of quantifiers
    assert negation_normal_form(sentence).quantifier_rank() == sentence.quantifier_rank()


@settings(max_examples=40, deadline=None)
@given(body=formulas(), graph=graphs(), count=st.integers(min_value=0, max_value=3))
def test_counting_expansion_agrees(body, graph, count):
    free = sorted(body.free_variables())
    inner = body
    for name in free[1:]:
        inner = Exists(name, inner)
    variable = free[0] if free else "x"
    sentence = CountingExists(variable, count, inner)
    expanded = counting_to_first_order(sentence)
    assert evaluate(sentence, graph) == evaluate(expanded, graph)


@settings(max_examples=60, deadline=None)
@given(formula=formulas(), graph=graphs())
def test_substitution_by_fresh_variable_then_rename_back(formula, graph):
    """Renaming a free variable to a fresh one and back is the identity."""
    free = sorted(formula.free_variables())
    if not free:
        return
    target = free[0]
    renamed = formula.substitute({target: Var("fresh_w")})
    roundtrip = renamed.substitute({"fresh_w": Var(target)})
    domain = sorted(graph.active_domain, key=repr)
    if not domain:
        return
    assignment = {name: domain[i % len(domain)] for i, name in enumerate(free)}
    assert evaluate(formula, graph, assignment=assignment) == evaluate(
        roundtrip, graph, assignment=assignment
    )


@settings(max_examples=60, deadline=None)
@given(sentence=sentences(), graph=graphs())
def test_double_negation(sentence, graph):
    assert evaluate(Not(Not(sentence)), graph) == evaluate(sentence, graph)
