"""Property-based tests (hypothesis) for the logic layer.

Random first-order sentences over the graph schema are generated together with
random small graphs; the properties assert that the syntactic transformations
(NNF, prenex, simplification, counting expansion, substitution) preserve
semantics and the syntactic measures behave as documented.
"""

from __future__ import annotations

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.db import Database
from repro.logic import (
    Atom,
    CountingExists,
    Eq,
    Exists,
    Forall,
    Formula,
    Not,
    Var,
    counting_to_first_order,
    evaluate,
    make_and,
    make_or,
    negation_normal_form,
    is_in_nnf,
    prenex_normal_form,
    simplify,
)

VARIABLES = ["x", "y", "z"]


def atoms() -> st.SearchStrategy[Formula]:
    variable = st.sampled_from(VARIABLES)
    edge = st.builds(lambda a, b: Atom("E", a, b), variable, variable)
    equality = st.builds(lambda a, b: Eq(Var(a), Var(b)), variable, variable)
    return st.one_of(edge, equality)


def formulas(max_depth: int = 3) -> st.SearchStrategy[Formula]:
    def extend(children: st.SearchStrategy[Formula]) -> st.SearchStrategy[Formula]:
        variable = st.sampled_from(VARIABLES)
        return st.one_of(
            st.builds(Not, children),
            st.builds(lambda a, b: make_and(a, b), children, children),
            st.builds(lambda a, b: make_or(a, b), children, children),
            st.builds(lambda v, b: Exists(v, b), variable, children),
            st.builds(lambda v, b: Forall(v, b), variable, children),
        )

    return st.recursive(atoms(), extend, max_leaves=8)


def sentences(max_depth: int = 3) -> st.SearchStrategy[Formula]:
    """Close random formulas by quantifying their free variables existentially."""

    def close(formula: Formula) -> Formula:
        closed = formula
        for name in sorted(formula.free_variables()):
            closed = Exists(name, closed)
        return closed

    return formulas(max_depth).map(close)


def graphs(max_nodes: int = 4) -> st.SearchStrategy[Database]:
    nodes = st.integers(min_value=0, max_value=max_nodes - 1)
    edges = st.lists(st.tuples(nodes, nodes), max_size=8)
    return st.builds(Database.graph, edges)


@settings(max_examples=60, deadline=None)
@given(sentence=sentences(), graph=graphs())
def test_nnf_preserves_truth(sentence, graph):
    nnf = negation_normal_form(sentence)
    assert is_in_nnf(nnf)
    assert evaluate(sentence, graph) == evaluate(nnf, graph)


@settings(max_examples=60, deadline=None)
@given(sentence=sentences(), graph=graphs())
def test_prenex_preserves_truth(sentence, graph):
    prenex = prenex_normal_form(sentence)
    assert evaluate(sentence, graph) == evaluate(prenex, graph)


@settings(max_examples=60, deadline=None)
@given(sentence=sentences(), graph=graphs())
def test_simplify_preserves_truth_on_nonempty(sentence, graph):
    if graph.is_empty():
        graph = graph.insert("E", (0, 0))
    reduced = simplify(sentence)
    assert evaluate(sentence, graph) == evaluate(reduced, graph)


@settings(max_examples=60, deadline=None)
@given(sentence=sentences())
def test_simplify_never_increases_size(sentence):
    assert simplify(sentence).size() <= sentence.size()


@settings(max_examples=60, deadline=None)
@given(sentence=sentences())
def test_nnf_preserves_quantifier_rank(sentence):
    # pushing negations never changes the nesting depth of quantifiers
    assert negation_normal_form(sentence).quantifier_rank() == sentence.quantifier_rank()


@settings(max_examples=40, deadline=None)
@given(body=formulas(), graph=graphs(), count=st.integers(min_value=0, max_value=3))
def test_counting_expansion_agrees(body, graph, count):
    free = sorted(body.free_variables())
    inner = body
    for name in free[1:]:
        inner = Exists(name, inner)
    variable = free[0] if free else "x"
    sentence = CountingExists(variable, count, inner)
    expanded = counting_to_first_order(sentence)
    assert evaluate(sentence, graph) == evaluate(expanded, graph)


@settings(max_examples=60, deadline=None)
@given(formula=formulas(), graph=graphs())
def test_substitution_by_fresh_variable_then_rename_back(formula, graph):
    """Renaming a free variable to a fresh one and back is the identity."""
    free = sorted(formula.free_variables())
    if not free:
        return
    target = free[0]
    renamed = formula.substitute({target: Var("fresh_w")})
    roundtrip = renamed.substitute({"fresh_w": Var(target)})
    domain = sorted(graph.active_domain, key=repr)
    if not domain:
        return
    assignment = {name: domain[i % len(domain)] for i, name in enumerate(free)}
    assert evaluate(formula, graph, assignment=assignment) == evaluate(
        roundtrip, graph, assignment=assignment
    )


@settings(max_examples=60, deadline=None)
@given(sentence=sentences(), graph=graphs())
def test_double_negation(sentence, graph):
    assert evaluate(Not(Not(sentence)), graph) == evaluate(sentence, graph)
