"""Shared grammar-based generators for the whole test suite.

One place defines how random first-order formulas, graph databases and
update-stream deltas are generated; the conformance suite
(``tests/conformance``), the backend-equivalence suite and the property
suites all draw from here instead of keeping per-suite copies.

Determinism: ``REPRO_SEED`` (the same knob ``benchmarks/run_all.py --seed``
exports) pins hypothesis' randomness via :func:`maybe_seed`, and
:func:`config_text` renders the active ``REPRO_*`` configuration — the test
harness (``tests/conftest.py``) appends it to every failure report so a flake
can be replayed exactly: same seed, same backend, same shard count.
"""

from __future__ import annotations

import os
from typing import Optional

import hypothesis
from hypothesis import strategies as st

from repro.db import Database, Delta
from repro.logic.syntax import (
    And,
    Atom,
    BOTTOM,
    CountingExists,
    Eq,
    Exists,
    Forall,
    Iff,
    Implies,
    Not,
    Or,
    TOP,
)
from repro.logic.terms import Const

__all__ = [
    "VARIABLES",
    "CONSTANTS",
    "repro_seed",
    "maybe_seed",
    "config_text",
    "terms",
    "atoms",
    "equalities",
    "base_formulas",
    "formulas",
    "sentences",
    "graphs",
    "graph_deltas",
    "update_streams",
    "backend_matrix",
    "SHARD_COUNTS",
]

VARIABLES = ("x", "y", "z")

#: constants 0..3 can be active in generated graphs; 7 and "ghost" never are
CONSTANTS = (0, 1, 2, 3, 7, "ghost")

#: the shard counts the conformance matrix sweeps over
SHARD_COUNTS = (1, 2, 4)


# ---------------------------------------------------------------------------
# reproducibility
# ---------------------------------------------------------------------------

def repro_seed() -> Optional[int]:
    """The ``REPRO_SEED`` environment value, if set and numeric."""
    raw = os.environ.get("REPRO_SEED", "").strip()
    if not raw:
        return None
    try:
        return int(raw)
    except ValueError:
        return None


def maybe_seed(test):
    """Pin hypothesis' randomness to ``REPRO_SEED`` when it is set.

    Applied to every generator-driven test so a failure reported with a seed
    replays deterministically: ``REPRO_SEED=<n> pytest <test>``.
    """
    value = repro_seed()
    if value is None:
        return test
    return hypothesis.seed(value)(test)


def config_text() -> str:
    """The active backend/shard/delta/seed configuration, for failure output."""
    parts = [
        f"REPRO_SEED={os.environ.get('REPRO_SEED', '<unset>')}",
        f"REPRO_BACKEND={os.environ.get('REPRO_BACKEND', '<unset>')}",
        f"REPRO_SHARDS={os.environ.get('REPRO_SHARDS', '<unset>')}",
        f"REPRO_SHARD_PROCS={os.environ.get('REPRO_SHARD_PROCS', '<unset>')}",
        f"REPRO_DELTA={os.environ.get('REPRO_DELTA', '<unset>')}",
        f"REPRO_SERVICE_WORKERS={os.environ.get('REPRO_SERVICE_WORKERS', '<unset>')}",
    ]
    return (
        "replay a generator-driven failure with the same configuration:\n  "
        + " ".join(parts)
    )


# ---------------------------------------------------------------------------
# formulas
# ---------------------------------------------------------------------------

def terms(constants: bool = True):
    """Variable names and (optionally) constants, some never active."""
    if not constants:
        return st.sampled_from(VARIABLES)
    return st.one_of(
        st.sampled_from(VARIABLES),
        st.sampled_from(CONSTANTS).map(lambda c: ("const", c)),
    )


def _mk_term(spec):
    if isinstance(spec, tuple) and spec[0] == "const":
        return Const(spec[1])
    return spec  # a variable name; Atom/Eq coerce strings to Var


def atoms(constants: bool = True):
    return st.tuples(terms(constants), terms(constants)).map(
        lambda pair: Atom("E", _mk_term(pair[0]), _mk_term(pair[1]))
    )


def equalities(constants: bool = True):
    return st.tuples(terms(constants), terms(constants)).map(
        lambda pair: Eq(_mk_term(pair[0]), _mk_term(pair[1]))
    )


def base_formulas(constants: bool = True, nullary: bool = True):
    leaves = [atoms(constants), equalities(constants)]
    if nullary:
        leaves.extend([st.just(TOP), st.just(BOTTOM)])
    return st.one_of(leaves)


def formulas(
    *,
    counting: bool = True,
    constants: bool = True,
    implications: bool = True,
    nullary: bool = True,
    max_leaves: int = 8,
):
    """Random formulas over the graph schema.

    ``counting=False`` restricts to plain FO (for transformations that do not
    accept counting quantifiers), ``constants=False`` to pure variable
    formulas, ``implications=False`` drops ``->``/``<->`` (for suites that
    exercise only the And/Or/Not fragment), ``nullary=False`` drops the
    ``true``/``false`` leaves (for syntactic properties that constant folding
    would defeat, e.g. rank preservation).
    """

    def extend(children):
        options = [
            children.map(Not),
            st.tuples(children, children).map(lambda p: And(*p)),
            st.tuples(children, children).map(lambda p: Or(*p)),
            st.tuples(st.sampled_from(VARIABLES), children).map(
                lambda p: Exists(p[0], p[1])
            ),
            st.tuples(st.sampled_from(VARIABLES), children).map(
                lambda p: Forall(p[0], p[1])
            ),
        ]
        if implications:
            options.append(
                st.tuples(children, children).map(lambda p: Implies(*p))
            )
            options.append(st.tuples(children, children).map(lambda p: Iff(*p)))
        if counting:
            options.append(
                st.tuples(
                    st.sampled_from(VARIABLES), st.integers(0, 3), children
                ).map(lambda p: CountingExists(p[0], p[1], p[2]))
            )
        return st.one_of(options)

    return st.recursive(
        base_formulas(constants, nullary), extend, max_leaves=max_leaves
    )


def _close(formula):
    closed = formula
    for variable in sorted(formula.free_variables()):
        closed = Exists(variable, closed)
    return closed


def sentences(**kwargs):
    """Random sentences: formulas with free variables closed existentially."""
    return formulas(**kwargs).map(_close)


# ---------------------------------------------------------------------------
# databases and update streams
# ---------------------------------------------------------------------------

def graphs(max_value: int = 3, max_edges: int = 8):
    """Random graph databases over nodes ``0..max_value``."""
    edge = st.tuples(st.integers(0, max_value), st.integers(0, max_value))
    return st.frozensets(edge, max_size=max_edges).map(Database.graph)


def graph_deltas(max_value: int = 3, max_rows: int = 3):
    """One update step: a handful of edge insertions and deletions.

    The two row sets are drawn disjoint (a delta may not insert and delete
    the same row); ineffective parts are normalized away on application.
    """
    edge = st.tuples(st.integers(0, max_value), st.integers(0, max_value))

    def build(pair):
        inserted, deleted = pair
        return Delta(
            inserted={"E": inserted - deleted}, deleted={"E": deleted - inserted}
        )

    return st.tuples(
        st.frozensets(edge, max_size=max_rows),
        st.frozensets(edge, max_size=max_rows),
    ).map(build)


def update_streams(length: int = 6, max_value: int = 3):
    """A stream of update steps for incremental/conformance testing."""
    return st.lists(graph_deltas(max_value), min_size=1, max_size=length)


# ---------------------------------------------------------------------------
# the backend matrix
# ---------------------------------------------------------------------------

def backend_matrix():
    """Fresh instances of every non-oracle backend configuration under test.

    Returns ``[(name, backend), ...]`` covering the compiled engine with
    delta evaluation on and off, the sharded engine at every shard count in
    :data:`SHARD_COUNTS`, and the **optimizer axis**: explicit
    optimizer-off variants of the compiled and one sharded configuration
    (the remaining configurations inherit ``REPRO_OPTIMIZER`` from the
    environment, so the CI optimizer-off leg flips the whole matrix at
    once).  The naive interpreter is the oracle the matrix is compared
    against, so it is not part of the matrix itself.
    """
    from repro.engine import CompiledBackend, ShardedBackend

    matrix = [
        ("compiled-delta", CompiledBackend(delta="on")),
        ("compiled-nodelta", CompiledBackend(delta="off")),
        ("compiled-noopt", CompiledBackend(optimizer="off")),
    ]
    for count in SHARD_COUNTS:
        matrix.append((f"sharded-{count}", ShardedBackend(shards=count)))
    matrix.append(
        ("sharded-2-noopt", ShardedBackend(shards=2, optimizer="off"))
    )
    # the process-executor axis: shard evaluation shipped to worker
    # processes over the plan/delta wire protocol (REPRO_SHARD_PROCS)
    matrix.append(("sharded-2-procs", ShardedBackend(shards=2, procs=2)))
    return matrix
