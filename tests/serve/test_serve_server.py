"""The server over real sockets: conformance, batching, failure handling, drain.

The central test is an *oracle comparison*: the same deterministic submission
sequence is driven once over the wire and once directly through an in-process
``TransactionService``, and the outcomes and final states must agree exactly
— the network layer may add latency, never semantics.  Around it: the forced
one-batch pipelining test (wedge the group-commit leader, pipeline N
transactions, release — all N must commit at one version), malformed-input
and disconnect handling, tracing/metrics plumbing, and the graceful-shutdown
contract (drained commits, zero leaked threads).
"""

from __future__ import annotations

import socket
import threading
import time

import pytest

from repro.obs import trace as _trace
from repro.serve import ServeClient, ServerThread, encode_request, preregister
from repro.serve.server import SERVE_WORKERS_ENV, default_serve_workers
from repro.service.workloads import build_service, forward_graph


# a deterministic mixed sequence: forward links, risky adds (loops and
# back-edges), deletes, and an ad-hoc multi-op transaction
def _script():
    steps = []
    for i in range(6):
        steps.append({"template": "link-forward", "params": [100 + i, 200 + i]})
    steps.append({"template": "add-edge", "params": [7, 7]})        # loop: refused
    steps.append({"template": "add-edge", "params": [201, 101]})    # back-edge
    steps.append({"template": "unlink", "params": [100, 200]})
    steps.append({"ops": [
        {"insert": ["E", [300, 301]]},
        {"insert": ["E", [301, 302]]},
    ]})
    return steps


class TestConformance:
    def test_wire_outcomes_equal_in_process_oracle(self, served):
        service, _harness, client = served
        oracle = build_service(forward_graph(40, 2, seed=9), commit_timeout=30.0)
        try:
            from repro.serve.server import standard_wire_templates

            wires = {w.name: w for w in standard_wire_templates()}
            for step in _script():
                status, wire_outcome = client.request("POST", "/txn", step)
                assert status == 200
                if "template" in step:
                    name, params = step["template"], tuple(step["params"])
                    work = wires[name].tracked_work(params)
                    local = oracle.execute(work, template=name, params=params)
                else:
                    from repro.serve import WireTemplate

                    adhoc = WireTemplate(
                        {"name": "_adhoc", "ops": step["ops"], "samples": [[]]}
                    )
                    local = oracle.execute(adhoc.tracked_work(()))
                assert wire_outcome["status"] == local.status, step
            assert client.scan("E")["result"] == sorted(
                (list(row) for row in oracle.snapshot().relation("E")), key=repr
            )
            assert service.invariant_holds()
            assert oracle.invariant_holds()
        finally:
            oracle.close()

    def test_reads_are_pinned_and_consistent(self, served):
        service, _harness, client = served
        client.submit("link-forward", [500, 501])
        assert client.contains("E", [500, 501])["result"] is True
        assert client.contains("E", [501, 500])["result"] is False
        assert client.evaluate("exists y . E(x, y)", x=500)["result"] is True
        assert client.evaluate("forall u . ~E(u, u)")["result"] is True
        scan = client.scan("E")
        assert [500, 501] in scan["result"]
        assert scan["version"] == service.store.version

    def test_template_listing_reflects_registrations(self, served):
        _service, _harness, client = served
        listed = client.request("GET", "/templates")[1]["templates"]
        names = {t["name"] for t in listed}
        assert {"link-forward", "unlink", "add-edge"} <= names
        spec = {
            "name": "listed",
            "ops": [{"insert": ["E", ["$0", "$1"]]}],
            "samples": [[0, 1]],
        }
        reply = client.register_template(spec)
        assert reply["registered"] == "listed"
        assert set(reply["verdicts"]) == {"no-loops", "no-triangles"}
        listed = client.request("GET", "/templates")[1]["templates"]
        assert any(t["name"] == "listed" for t in listed)
        # re-registering the same shape is idempotent; a different shape is not
        client.register_template(spec)
        status, payload = client.request(
            "POST", "/templates",
            {**spec, "ops": [{"delete": ["E", ["$0", "$1"]]}]},
        )
        assert status == 400 and "different shape" in payload["error"]


class TestBatching:
    def test_pipelined_batch_commits_at_one_version(self, served):
        """One network flush -> one group-commit batch -> one store apply."""
        service, _harness, client = served
        count = 6
        batches_before = service.stats.as_dict()["batches"]
        # wedge the leader seat so every pipelined transaction queues up
        assert service._commit_lock.acquire(timeout=5)
        released = threading.Event()

        def release_when_queued():
            deadline = time.monotonic() + 10
            while time.monotonic() < deadline:
                with service._queue_lock:
                    if len(service._queue) >= count:
                        break
                time.sleep(0.002)
            with service._commit_cond:
                service._commit_lock.release()
                service._commit_cond.notify_all()
            released.set()

        releaser = threading.Thread(target=release_when_queued)
        releaser.start()
        try:
            outcomes = client.submit_many(
                [
                    {"template": "link-forward", "params": [600 + i, 700 + i]}
                    for i in range(count)
                ]
            )
        finally:
            releaser.join()
        assert released.is_set()
        statuses = [payload["status"] for _s, payload in outcomes]
        assert statuses == ["committed"] * count
        versions = {payload["version"] for _s, payload in outcomes}
        assert len(versions) == 1, (
            f"one pipelined flush must commit as one batch; saw versions {versions}"
        )
        stats = service.stats.as_dict()
        assert stats["max_batch"] >= count
        assert stats["batches"] == batches_before + 1

    def test_batch_metrics_are_recorded(self, served):
        _service, _harness, client = served
        client.submit_many(
            [{"template": "link-forward", "params": [800 + i, 900 + i]}
             for i in range(4)]
        )
        snapshot = client.stats()["metrics"]
        assert snapshot["serve.batches"] >= 1
        assert snapshot["serve.batched_requests"] >= 4
        # the /stats request observing the gauge is control-plane: it is
        # neither shed nor counted against the dispatch-bound capacity
        assert snapshot["serve.inflight"] == 0
        assert snapshot["serve.txn.latency_ms"]["count"] >= 4


class TestFailureHandling:
    def test_malformed_requests_get_400_and_service_survives(self, served):
        service, harness, client = served
        host, port = harness.address
        # broken framing: 400 then the connection is closed
        with socket.create_connection((host, port), timeout=10) as raw:
            raw.sendall(b"COMPLETE GARBAGE\r\n\r\n")
            reply = raw.recv(65536)
            assert b"400" in reply.split(b"\r\n", 1)[0]
            assert raw.recv(65536) == b""
        # bad JSON, unknown route, unknown template, bad params: per-request
        # errors on a connection that stays usable
        status, _ = client.request("POST", "/txn", None)
        assert status == 400
        assert client.request("GET", "/nope")[0] == 404
        assert client.request("POST", "/txn", {"template": "ghost"})[0] == 400
        assert client.request("POST", "/txn", {"template": "unlink"})[0] == 400
        assert client.request("POST", "/read", {"scan": "NoSuchRelation"})[0] == 400
        assert client.request("POST", "/read", {"peek": "E"})[0] == 400
        # ...and the service still commits fine afterwards
        status, outcome = client.submit("link-forward", [950, 951])
        assert status == 200 and outcome["status"] == "committed"
        assert service.invariant_holds()

    def test_disconnect_mid_commit_still_commits(self, served):
        service, harness, client = served
        host, port = harness.address
        edge = [970, 971]
        raw = socket.create_connection((host, port), timeout=10)
        raw.sendall(encode_request(
            "POST", "/txn", {"template": "link-forward", "params": edge}
        ))
        raw.close()  # gone before the response
        deadline = time.monotonic() + 10
        while time.monotonic() < deadline:
            if client.contains("E", edge)["result"]:
                break
            time.sleep(0.01)
        assert client.contains("E", edge)["result"] is True
        assert service.invariant_holds()


class TestObservability:
    def test_service_txn_spans_nest_under_serve_request(self, served):
        _service, _harness, client = served
        _trace.configure("on")
        try:
            _trace.clear()
            client.submit("link-forward", [980, 981])
            spans = _trace.finished()
        finally:
            _trace.configure("off")
        serves = [s for s in spans if s["name"] == "serve.request"]
        assert serves, "the txn endpoint must open a serve.request span"
        assert serves[-1].get("attrs", {}).get("route") == "txn"
        children = [
            s for s in spans
            if s["name"] == "service.txn" and s["parent_id"] == serves[-1]["span_id"]
        ]
        assert children, "service.txn must be parented under serve.request"

    def test_prometheus_exposition_includes_serve_metrics(self, served):
        _service, _harness, client = served
        client.submit("link-forward", [985, 986])
        text = client.metrics_text()
        assert "serve_requests" in text
        assert "serve_txn_latency_ms" in text


class TestLifecycle:
    def test_graceful_shutdown_drains_and_leaks_no_threads(self):
        baseline = set(threading.enumerate())
        service = build_service(forward_graph(30, 2, seed=4), commit_timeout=30.0)
        harness = ServerThread(service, owns_service=True).start()
        preregister(harness.server)
        host, port = harness.address
        with ServeClient(host, port) as client:
            outcomes = client.submit_many(
                [{"template": "link-forward", "params": [20 + i, 60 + i]}
                 for i in range(5)]
            )
            assert all(p["status"] == "committed" for _s, p in outcomes)
        harness.stop()
        # stop() must have closed the owned service (idempotent close proves it)
        assert service._owns_store is False
        deadline = time.monotonic() + 10
        while time.monotonic() < deadline:
            leaked = set(threading.enumerate()) - baseline
            if not leaked:
                break
            time.sleep(0.05)
        assert not leaked, f"threads leaked past shutdown: {leaked}"

    def test_stop_rejects_new_connections_but_finishes_started_work(self):
        service = build_service(forward_graph(30, 2, seed=5), commit_timeout=30.0)
        with ServerThread(service, owns_service=True) as harness:
            preregister(harness.server)
            host, port = harness.address
            with ServeClient(host, port) as client:
                status, outcome = client.submit("link-forward", [21, 61])
                assert status == 200 and outcome["status"] == "committed"
        # after the context exits the listener is gone
        with pytest.raises(OSError):
            socket.create_connection((host, port), timeout=2)

    def test_workers_env_knob_warns_on_garbage(self, monkeypatch):
        monkeypatch.setenv(SERVE_WORKERS_ENV, "12")
        assert default_serve_workers() == 12
        monkeypatch.setenv(SERVE_WORKERS_ENV, "a-few")
        with pytest.warns(RuntimeWarning, match="REPRO_SERVE_WORKERS"):
            assert default_serve_workers() == 8
        monkeypatch.delenv(SERVE_WORKERS_ENV)
        assert default_serve_workers() == 8
