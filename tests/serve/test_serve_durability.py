"""Acked over the wire == durable on disk: kill-and-recover through the server.

The serving contract extends the WAL's: a transaction whose response says
``committed`` must survive a crash immediately after the response was read —
the server only writes a response after the group-commit leader has the
storage engine's acceptance of the batch.  The second test pins the
amortisation claim deterministically: a pipelined flush of N transactions,
forced into one group-commit batch, costs exactly **one** WAL append.
"""

from __future__ import annotations

import threading
import time

from repro.db import GRAPH_SCHEMA, Store, WalStorageEngine
from repro.serve import ServeClient, ServerThread, preregister
from repro.service.workloads import (
    build_service,
    forward_graph,
    standard_constraints,
)


def _durable_service(directory, initial):
    engine = WalStorageEngine(str(directory), checkpoint_interval=0)
    return build_service(initial, commit_timeout=30.0, engine=engine)


def test_acked_commit_survives_kill_and_recover(tmp_path):
    service = _durable_service(tmp_path, forward_graph(20, 2, seed=11))
    acked = []
    # the test keeps the service: the engine must outlive the server so the
    # crash happens on a live WAL, not after an orderly close flushed it
    with ServerThread(service) as harness:
        preregister(harness.server)
        with ServeClient(*harness.address) as client:
            for i in range(12):
                edge = [400 + i, 500 + i]
                status, outcome = client.submit("link-forward", edge)
                assert status == 200
                if outcome["status"] == "committed":
                    acked.append(tuple(edge))
            # a loop insert is refused and must NOT appear after recovery
            _status, refused = client.submit("add-edge", [3, 3])
            assert refused["status"] in ("rejected", "aborted")
    assert acked, "at least one commit must have been acknowledged"

    service.store.engine.crash()
    service.close()  # idempotent after the crash; releases everything else

    with Store(GRAPH_SCHEMA, engine=WalStorageEngine(str(tmp_path))) as reborn:
        recovered = reborn.snapshot().relation("E")
        for edge in acked:
            assert edge in recovered, (
                f"acked edge {edge} lost in the crash — the ack preceded durability"
            )
        assert (3, 3) not in recovered
        assert all(c.holds(reborn.snapshot()) for c in standard_constraints())


def test_pipelined_flush_costs_one_wal_append(tmp_path):
    """The batching acceptance criterion, pinned: N acks, one WAL append."""
    service = _durable_service(tmp_path, forward_graph(20, 2, seed=12))
    count = 6
    with ServerThread(service, owns_service=True) as harness:
        preregister(harness.server)
        with ServeClient(*harness.address) as client:
            appends_before = service.store.storage_stats()["wal_appends"]
            # wedge the leader seat so the whole flush queues as one batch
            assert service._commit_lock.acquire(timeout=5)

            def release_when_queued():
                deadline = time.monotonic() + 10
                while time.monotonic() < deadline:
                    with service._queue_lock:
                        if len(service._queue) >= count:
                            break
                    time.sleep(0.002)
                with service._commit_cond:
                    service._commit_lock.release()
                    service._commit_cond.notify_all()

            releaser = threading.Thread(target=release_when_queued)
            releaser.start()
            try:
                outcomes = client.submit_many(
                    [{"template": "link-forward", "params": [600 + i, 700 + i]}
                     for i in range(count)]
                )
            finally:
                releaser.join()
            assert [p["status"] for _s, p in outcomes] == ["committed"] * count
            appends = service.store.storage_stats()["wal_appends"] - appends_before
            assert appends == 1, (
                f"{count} acked commits from one flush must cost one WAL "
                f"append, not {appends}"
            )
