"""Serving-layer resilience: shedding, degraded health, disconnects, deadlines."""

from __future__ import annotations

import socket
import time

import pytest

from repro import faults
from repro.serve import ServeClient, ServerThread, preregister
from repro.serve.client import encode_request
from repro.serve.server import (
    DEFAULT_SERVE_QUEUE,
    SERVE_QUEUE_ENV,
    default_serve_queue,
)
from repro.service.workloads import build_service, forward_graph

from conftest import serving


@pytest.fixture(autouse=True)
def clean_hooks():
    faults.uninstall()
    yield
    faults.uninstall()


@pytest.fixture()
def shedding_server():
    """A server whose dispatch bound is zero: every work request sheds."""
    service = build_service(forward_graph(40, 2, seed=9), commit_timeout=30.0)
    with ServerThread(
        service, owns_service=True, max_inflight=0
    ) as harness:
        preregister(harness.server)
        host, port = harness.address
        with ServeClient(host, port) as client:
            yield harness, client


class TestShedding:
    def test_overloaded_txn_gets_503_with_retry_hints(self, shedding_server):
        _, client = shedding_server
        status, payload = client.submit("link-forward", [500, 501])
        assert status == 503
        assert "overloaded" in payload["error"]
        assert payload["retry_after"] >= 1

    def test_retry_after_header_is_on_the_wire(self, shedding_server):
        harness, _ = shedding_server
        host, port = harness.address
        with socket.create_connection((host, port), timeout=10.0) as raw:
            raw.sendall(encode_request("POST", "/read", {"scan": "E"}))
            blob = b""
            while b"\r\n\r\n" not in blob:
                blob += raw.recv(65536)
        head = blob.split(b"\r\n\r\n", 1)[0].decode("ascii")
        assert head.startswith("HTTP/1.1 503")
        assert "retry-after: 1" in head.lower()

    def test_health_degrades_while_shedding_and_stays_reachable(self, shedding_server):
        _, client = shedding_server
        client.submit("link-forward", [500, 501])  # force one shed
        health = client.health()
        assert health["status"] == "degraded"
        assert health["shed"] >= 1
        assert health["max_inflight"] == 0

    def test_submit_retrying_surfaces_the_last_503(self, shedding_server):
        _, client = shedding_server
        begun = time.monotonic()
        status, payload = client.submit_retrying(
            "link-forward", [500, 501], max_retries=1, backoff=0.01
        )
        assert status == 503
        # it really did back off before the retry (Retry-After honored)
        assert time.monotonic() - begun >= 0.5

    def test_serve_queue_env_knob(self, monkeypatch):
        monkeypatch.setenv(SERVE_QUEUE_ENV, "17")
        assert default_serve_queue() == 17
        monkeypatch.setenv(SERVE_QUEUE_ENV, "unbounded")
        with pytest.warns(RuntimeWarning, match=SERVE_QUEUE_ENV):
            assert default_serve_queue() == DEFAULT_SERVE_QUEUE
        monkeypatch.delenv(SERVE_QUEUE_ENV)
        assert default_serve_queue() == DEFAULT_SERVE_QUEUE


class TestHealthyPath:
    def test_health_reports_ok_with_capacity_fields(self, served):
        _, _, client = served
        health = client.health()
        assert health["status"] == "ok"
        assert health["inflight"] == 0
        assert health["max_inflight"] >= 1
        assert health["shed"] == 0

    def test_deadline_ms_is_validated(self, served):
        _, _, client = served
        for bad in (-5, 0, "soon"):
            status, payload = client.request(
                "POST", "/txn",
                {"template": "link-forward", "params": [500, 501],
                 "deadline_ms": bad},
            )
            assert status == 400
            assert "deadline_ms" in payload["error"]

    def test_generous_deadline_commits(self, served):
        _, _, client = served
        status, outcome = client.submit_retrying(
            "link-forward", [500, 501], deadline_ms=30_000
        )
        assert status == 200
        assert outcome["status"] == "committed"
        assert outcome["retryable"] is False

    def test_submit_retrying_rides_out_a_transient_commit_fault(self, served):
        service, _, client = served
        service.commit_retries = 0  # force the abort out to the client
        faults.install(
            faults.FaultPlan().site("storage.commit_batch", exc="storage", hits=(1,))
        )
        status, outcome = client.submit_retrying(
            "link-forward", [510, 511], max_retries=3, backoff=0.01
        )
        assert status == 200
        assert outcome["status"] == "committed"

    def test_retryable_abort_is_typed_on_the_wire(self, served):
        service, _, client = served
        service.commit_retries = 0
        faults.install(
            faults.FaultPlan().site("storage.commit_batch", exc="storage")
        )
        status, outcome = client.submit("link-forward", [512, 513])
        assert status == 200
        assert outcome["status"] == "aborted"
        assert outcome["retryable"] is True
        assert "commit failed" in outcome["reason"]


class TestDisconnects:
    def test_injected_write_reset_is_counted_not_crashed(self, served):
        _, harness, client = served
        faults.install(faults.FaultPlan().site("serve.write.reset", hits=(1,)))
        with pytest.raises(ConnectionError):
            client.submit("link-forward", [520, 521])
        faults.uninstall()
        # the server survived: a fresh connection works and the disconnect
        # was counted instead of tearing down the loop
        host, port = harness.address
        with ServeClient(host, port) as fresh:
            assert fresh.health()["status"] in ("ok", "degraded")
            text = fresh.metrics_text()
        count = _metric_value(text, "serve_client_disconnects")
        assert count >= 1

    def test_abrupt_client_close_mid_request_is_clean(self, served):
        _, harness, _ = served
        host, port = harness.address
        raw = socket.create_connection((host, port), timeout=10.0)
        # half a request, then a hard close
        raw.sendall(b"POST /txn HTTP/1.1\r\nContent-Length: 999\r\n\r\n{")
        raw.close()
        time.sleep(0.1)
        with ServeClient(host, port) as fresh:
            assert fresh.health()["status"] in ("ok", "degraded")

    def test_read_slow_site_only_adds_latency(self, served):
        _, _, client = served
        faults.install(
            faults.FaultPlan().site("serve.read.slow", latency=0.02, exc="none")
        )
        status, outcome = client.submit("link-forward", [530, 531])
        assert status == 200
        assert outcome["status"] == "committed"


def _metric_value(text: str, name: str) -> float:
    for line in text.splitlines():
        parts = line.split()
        if len(parts) == 2 and parts[0] == name:
            return float(parts[1])
    raise AssertionError(f"metric {name!r} not found")
