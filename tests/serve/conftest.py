"""Shared harness for the serving-layer tests: one server + one client."""

from __future__ import annotations

import contextlib
from typing import Iterator, Optional, Tuple

import pytest

from repro.serve import ServeClient, ServerThread, preregister
from repro.service import TransactionService
from repro.service.workloads import build_service, forward_graph


@contextlib.contextmanager
def serving(
    service: TransactionService,
    workers: Optional[int] = None,
) -> Iterator[Tuple[TransactionService, ServerThread, ServeClient]]:
    """Start ``service`` behind a server thread; yield (service, harness, client).

    The harness owns the service: exit drains in-flight batches, joins the
    worker pool and closes the service (releasing any WAL handles).
    """
    with ServerThread(service, workers=workers, owns_service=True) as harness:
        preregister(harness.server)
        host, port = harness.address
        with ServeClient(host, port) as client:
            yield service, harness, client


@pytest.fixture()
def served():
    """A small standard service behind a freshly started server."""
    service = build_service(forward_graph(40, 2, seed=9), commit_timeout=30.0)
    with serving(service) as bundle:
        yield bundle
