"""Concurrent remote clients, checked against serial replay.

Many client threads — each with its own connection — hammer a small node
pool so transactions genuinely conflict.  Afterwards the service's commit
log (writer tags in commit order) is replayed serially from the initial
state: the replay must land on exactly the served store's final state, and
every intermediate state must satisfy the integrity constraints.  That is
the serializability contract of the paper, re-proved through the socket.
"""

from __future__ import annotations

import threading

from repro.serve import ServeClient, ServerThread, preregister, standard_wire_templates
from repro.service import SnapshotTransaction
from repro.service.workloads import build_service, forward_graph, standard_constraints

CLIENTS = 8
OPS_PER_CLIENT = 25
NODES = 12  # small pool => real write-write and guard conflicts


def _client_ops(client_id):
    """A deterministic mixed op stream for one client over the shared pool."""
    ops = []
    for i in range(OPS_PER_CLIENT):
        a = (client_id * 7 + i * 3) % NODES
        b = (client_id * 5 + i * 11 + 1) % NODES
        name = ("link-forward", "add-edge", "unlink")[i % 3]
        if name == "link-forward":
            a, b = min(a, b), max(a, b) + 1  # keep the forward precondition
        ops.append((name, (a, b)))
    return ops


def test_concurrent_wire_clients_are_serializable():
    initial = forward_graph(NODES, 2, seed=13)
    service = build_service(initial, commit_timeout=60.0)
    with ServerThread(service, owns_service=True) as harness:
        preregister(harness.server)
        host, port = harness.address
        errors = []

        def hammer(client_id):
            try:
                with ServeClient(host, port) as client:
                    for op_index, (name, params) in enumerate(_client_ops(client_id)):
                        tag = client_id * 1000 + op_index
                        status, outcome = client.submit(name, list(params), tag=tag)
                        assert status == 200, outcome
                        assert outcome["status"] in (
                            "committed", "rejected", "aborted",
                        ), outcome
            except Exception as exc:  # surfaced after the join
                errors.append((client_id, exc))

        threads = [
            threading.Thread(target=hammer, args=(c,)) for c in range(CLIENTS)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors, errors

        final = service.snapshot()
        commit_log = list(service.commit_log)
        assert service.invariant_holds()

    # serial replay: apply each committed writer's work, in commit order,
    # to a fresh copy of the initial state — it must reproduce `final`
    wires = {w.name: w for w in standard_wire_templates()}
    works = {}
    for client_id in range(CLIENTS):
        for op_index, (name, params) in enumerate(_client_ops(client_id)):
            works[client_id * 1000 + op_index] = wires[name].tracked_work(params)

    replay = initial
    constraints = standard_constraints()
    for tag in commit_log:
        handle = SnapshotTransaction(replay, -1)
        works[tag](handle)
        replay = replay.apply_delta(handle.delta())
        assert all(c.holds(replay) for c in constraints), (
            f"constraint broken at replayed tag {tag}"
        )
    assert replay == final, (
        "serial replay of the commit log diverged from the served state"
    )
