"""Wire framing and template compilation, without any sockets.

Two contracts under test: (a) the HTTP-subset parser either decodes a
complete request exactly, waits for more bytes, or rejects input that can
never become valid — mirroring the WAL's "round-trip or reject" discipline at
the network layer; (b) a :class:`WireTemplate` compiles one declarative spec
into two artifacts (the FOProgram admission classifies, the tracked closure
submissions execute) that perform *identical* state transitions — the
soundness premise of serving admission fast paths to remote clients.
"""

from __future__ import annotations

import json

import pytest

from repro.db import Database
from repro.serve import (
    ProtocolError,
    WireTemplate,
    drain_requests,
    encode_request,
    encode_response,
    parse_request,
    parse_response,
)
from repro.service import SnapshotTransaction


def _request_bytes(method="POST", path="/txn", body=None):
    return encode_request(method, path, body)


class TestFraming:
    def test_round_trip(self):
        raw = _request_bytes(body={"template": "t", "params": [1, 2]})
        request, rest = parse_request(raw)
        assert rest == b""
        assert request.method == "POST"
        assert request.path == "/txn"
        assert request.json() == {"template": "t", "params": [1, 2]}

    def test_incomplete_returns_none(self):
        raw = _request_bytes(body={"x": 1})
        for cut in (0, 5, len(raw) - 1):
            assert parse_request(raw[:cut]) is None

    def test_query_string_is_stripped(self):
        request, _ = parse_request(b"GET /stats?verbose=1 HTTP/1.1\r\n\r\n")
        assert request.path == "/stats"

    def test_pipelined_drain_returns_every_complete_request(self):
        one = _request_bytes(body={"i": 1})
        two = _request_bytes(body={"i": 2})
        half = _request_bytes(body={"i": 3})[:10]
        requests, rest = drain_requests(one + two + half)
        assert [r.json()["i"] for r in requests] == [1, 2]
        assert rest == half

    @pytest.mark.parametrize(
        "raw",
        [
            b"NOT A REQUEST\r\n\r\n",
            b"GET /x\r\n\r\n",                       # no version
            b"POST /txn HTTP/1.1\r\nbadheader\r\n\r\n",
            b"POST /txn HTTP/1.1\r\nContent-Length: many\r\n\r\n",
            b"POST /txn HTTP/1.1\r\nContent-Length: -3\r\n\r\n",
            b"POST /txn HTTP/1.1\r\nContent-Length: 99999999\r\n\r\n",
        ],
    )
    def test_unfixable_input_is_rejected(self, raw):
        with pytest.raises(ProtocolError):
            parse_request(raw)

    def test_oversized_header_block_is_rejected_before_completion(self):
        with pytest.raises(ProtocolError):
            parse_request(b"GET /" + b"x" * (17 * 1024))

    def test_bad_json_body_surfaces_on_decode_not_parse(self):
        request, _ = parse_request(
            b"POST /txn HTTP/1.1\r\nContent-Length: 9\r\n\r\nnot json!"
        )
        with pytest.raises(ProtocolError):
            request.json()

    def test_response_round_trip(self):
        blob = encode_response(200, json.dumps({"ok": True}).encode())
        (status, payload), rest = parse_response(blob + b"tail")
        assert status == 200
        assert payload == {"ok": True}
        assert rest == b"tail"
        assert parse_response(blob[:-1]) is None


LINK_SPEC = {
    "name": "proto-link",
    "ops": [{"insert": ["E", ["$0", "$1"]]}],
    "samples": [[0, 1]],
}

SWAP_SPEC = {
    "name": "proto-swap",
    "ops": [
        {"delete": ["E", ["$0", "$1"]]},
        {"insert": ["E", ["$1", "$0"]]},
    ],
    "samples": [[0, 1]],
}


class TestWireTemplates:
    def test_program_and_closure_perform_the_same_transition(self):
        wire = WireTemplate(SWAP_SPEC)
        db = Database.graph([(3, 4), (5, 6)])
        via_program = wire.build_program(3, 4).apply(db)
        handle = SnapshotTransaction(db, -1)
        wire.tracked_work((3, 4))(handle)
        via_closure = db.apply_delta(handle.delta())
        assert via_program == via_closure
        assert via_program.relation("E") == frozenset({(4, 3), (5, 6)})

    def test_placeholders_resolve_and_escape(self):
        wire = WireTemplate(
            {
                "name": "proto-mixed",
                "ops": [{"insert": ["E", ["$1", "$$0"]]}],
                "samples": [[0, "ignored"]],
            }
        )
        (kind, relation, row), = [
            op for op in [("insert", "E", wire.ops[0].resolve((9, 7)))]
        ]
        assert row == (7, "$0")

    def test_out_of_range_placeholder_caught_at_registration(self):
        with pytest.raises(ProtocolError):
            WireTemplate(
                {
                    "name": "bad",
                    "ops": [{"insert": ["E", ["$0", "$5"]]}],
                    "samples": [[0, 1]],
                }
            )

    @pytest.mark.parametrize(
        "spec",
        [
            {"name": "x"},                                     # no ops
            {"name": "x", "ops": []},
            {"name": "", "ops": [{"insert": ["E", [1, 2]]}]},
            {"name": "x", "ops": [{"upsert": ["E", [1, 2]]}]},
            {"name": "x", "ops": [{"insert": ["E", [1, 2]], "delete": ["E", [1, 2]]}]},
            {"name": "x", "ops": [{"insert": ["E", [[1], 2]]}], "samples": [[]]},
            {"name": "x", "ops": [{"insert": ["E", [1, 2]]}], "samples": []},
            {"name": "x", "ops": [{"insert": ["E", [1, 2]]}],
             "guards": {"no-loops": "~(p0 ="}},                # unparseable guard
        ],
    )
    def test_malformed_specs_are_rejected(self, spec):
        with pytest.raises(ProtocolError):
            WireTemplate(spec)

    def test_admission_template_carries_guards_and_samples(self):
        wire = WireTemplate(
            {
                "name": "proto-guarded",
                "ops": [{"insert": ["E", ["$0", "$1"]]}],
                "samples": [[0, 1], [1, 0]],
                "guards": {"no-loops": "~(p0 = p1)"},
            }
        )
        template = wire.admission_template()
        assert template.samples == ((0, 1), (1, 0))
        guard = template.guards["no-loops"](3, 3)
        from repro.engine import NaiveBackend

        assert not NaiveBackend().evaluate(guard, Database.graph([]))
        assert NaiveBackend().evaluate(
            template.guards["no-loops"](3, 4), Database.graph([])
        )

    def test_describe_round_trips_through_json(self):
        wire = WireTemplate(SWAP_SPEC)
        described = json.loads(json.dumps(wire.describe()))
        assert WireTemplate(described).describe() == wire.describe()
