"""Tests for the Datalog engine and the recursive transactions of Theorem B."""

import pytest

from repro.db import (
    Database,
    chain,
    chain_and_cycles,
    cycle,
    random_graph,
    transitive_closure,
    two_branch_tree,
)
from repro.db.graph import deterministic_transitive_closure, same_generation
from repro.transactions import (
    DatalogAtom,
    DatalogError,
    DatalogProgram,
    DatalogTransaction,
    Literal,
    Rule,
    WhileTransaction,
    dtc_datalog_transaction,
    dtc_transaction,
    sg_datalog_transaction,
    sg_transaction,
    tc_datalog_transaction,
    tc_transaction,
    tc_while_transaction,
    transitive_closure_program,
)


class TestDatalogEngine:
    def test_simple_join(self):
        program = DatalogProgram([
            Rule(DatalogAtom("path2", "x", "z"),
                 [Literal.positive("E", "x", "y"), Literal.positive("E", "y", "z")]),
        ])
        result = program.evaluate(chain(4))
        assert result["path2"] == frozenset({(0, 2), (1, 3)})

    def test_recursion_transitive_closure(self):
        result = transitive_closure_program().evaluate(chain(5))
        assert result["tc"] == transitive_closure(chain(5)).edges

    def test_negation_stratified(self):
        program = DatalogProgram([
            Rule(DatalogAtom("node", "x"), [Literal.positive("E", "x", "y")]),
            Rule(DatalogAtom("node", "y"), [Literal.positive("E", "x", "y")]),
            Rule(DatalogAtom("sink", "x"),
                 [Literal.positive("node", "x"), Literal.negative("hasout", "x")]),
            Rule(DatalogAtom("hasout", "x"), [Literal.positive("E", "x", "y")]),
        ])
        result = program.evaluate(chain(4))
        assert result["sink"] == frozenset({(3,)})
        assert len(program.strata) >= 2

    def test_unstratifiable_rejected(self):
        with pytest.raises(DatalogError):
            DatalogProgram([
                Rule(DatalogAtom("p", "x"),
                     [Literal.positive("E", "x", "y"), Literal.negative("q", "x")]),
                Rule(DatalogAtom("q", "x"),
                     [Literal.positive("E", "x", "y"), Literal.negative("p", "x")]),
            ])

    def test_unsafe_rules_rejected(self):
        with pytest.raises(DatalogError):
            Rule(DatalogAtom("p", "x"), [Literal.positive("E", "y", "y")])
        with pytest.raises(DatalogError):
            Rule(DatalogAtom("p", "x"),
                 [Literal.positive("E", "x", "x"), Literal.negative("q", "z")])

    def test_equality_binding_makes_rule_safe(self):
        rule = Rule(
            DatalogAtom("p", "x"),
            [Literal.positive("E", "y", "y"), Literal.equal("x", "y")],
        )
        program = DatalogProgram([rule])
        assert program.evaluate(Database.graph([(1, 1), (1, 2)]))["p"] == frozenset({(1,)})

    def test_constants_in_rules(self):
        program = DatalogProgram([
            Rule(DatalogAtom("from_zero", "y"), [Literal.positive("E", 0, "y")]),
        ])
        assert program.evaluate(chain(3))["from_zero"] == frozenset({(1,)})

    def test_inequality_constraint(self):
        program = DatalogProgram([
            Rule(DatalogAtom("nonloop", "x", "y"),
                 [Literal.positive("E", "x", "y"), Literal.not_equal("x", "y")]),
        ])
        g = Database.graph([(1, 1), (1, 2)])
        assert program.evaluate(g)["nonloop"] == frozenset({(1, 2)})

    def test_arity_consistency_enforced(self):
        with pytest.raises(DatalogError):
            DatalogProgram([
                Rule(DatalogAtom("p", "x"), [Literal.positive("E", "x", "y")]),
                Rule(DatalogAtom("p", "x", "y"), [Literal.positive("E", "x", "y")]),
            ])

    def test_empty_program_rejected(self):
        with pytest.raises(DatalogError):
            DatalogProgram([])

    def test_datalog_transaction_output_arity_checked(self):
        program = DatalogProgram([
            Rule(DatalogAtom("unary", "x"), [Literal.positive("E", "x", "y")]),
        ])
        t = DatalogTransaction(program, {"E": "unary"})
        with pytest.raises(Exception):
            t.apply(chain(3))


class TestRecursiveTransactions:
    @pytest.fixture(scope="class")
    def sample_graphs(self):
        return [
            chain(4),
            cycle(3),
            chain_and_cycles(3, [2]),
            two_branch_tree(2, 3),
            random_graph(5, 0.35, seed=5),
            Database.empty(),
        ]

    def test_tc_forms_agree(self, sample_graphs):
        direct, datalog, while_form = tc_transaction(), tc_datalog_transaction(), tc_while_transaction()
        for g in sample_graphs:
            expected = transitive_closure(g)
            assert direct.apply(g) == expected
            assert datalog.apply(g) == expected
            # the while form only *adds* edges, so compare against tc of input with edges kept
            assert while_form.apply(g) == g.union(expected)

    def test_dtc_forms_agree(self, sample_graphs):
        direct, datalog = dtc_transaction(), dtc_datalog_transaction()
        for g in sample_graphs:
            assert direct.apply(g) == deterministic_transitive_closure(g)
            assert datalog.apply(g) == deterministic_transitive_closure(g)

    def test_sg_forms_agree(self, sample_graphs):
        direct, datalog = sg_transaction(), sg_datalog_transaction()
        for g in sample_graphs:
            assert direct.apply(g) == same_generation(g)
            assert datalog.apply(g) == same_generation(g)

    def test_dtc_differs_from_tc_when_branching(self):
        g = Database.graph([(0, 1), (0, 2), (1, 3)])
        assert deterministic_transitive_closure(g) != transitive_closure(g)

    def test_while_transaction_fixpoint_and_bound(self):
        t = tc_while_transaction()
        g = chain(6)
        assert t.apply(g) == g.union(transitive_closure(g))
        bounded = WhileTransaction(t.body, max_iterations=1, name="one-step")
        # a single application cannot complete the closure of a long chain
        assert bounded.apply(g) != g.union(transitive_closure(g))
