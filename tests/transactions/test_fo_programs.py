"""Tests for the Qian-style first-order transaction language."""

import pytest

from repro.db import Database, chain, cycle, diagonal_graph
from repro.logic import Const, evaluate, parse
from repro.logic.builder import E, exists
from repro.logic.syntax import FormulaError, make_and
from repro.transactions import (
    Conditional,
    DeleteWhere,
    FOProgram,
    InsertTuple,
    InsertWhere,
    SetRelation,
    TransactionError,
)
from repro.core import PrerelationSpec


def prerelation_agrees(program, databases):
    """The compiled prerelation semantics matches the operational semantics."""
    spec = PrerelationSpec.from_fo_program(program)
    transaction = spec.as_transaction()
    return all(transaction.apply(db) == program.apply(db) for db in databases)


class TestStatements:
    def test_insert_tuple(self):
        program = FOProgram([InsertTuple("E", 8, 9)])
        out = program.apply(chain(2))
        assert (8, 9) in out.edges
        assert (0, 1) in out.edges

    def test_insert_tuple_requires_ground_terms(self):
        # plain Python values (including strings) are constants; an explicit
        # variable term is rejected because a single concrete tuple is inserted
        from repro.logic import Var

        assert InsertTuple("E", "x", 1).terms[0] == Const("x")
        with pytest.raises(FormulaError):
            InsertTuple("E", Var("x"), 1)

    def test_insert_where(self):
        # symmetric closure
        program = FOProgram([InsertWhere("E", ("x", "y"), E("y", "x"))])
        out = program.apply(chain(3))
        assert (1, 0) in out.edges and (2, 1) in out.edges

    def test_delete_where(self):
        program = FOProgram([DeleteWhere("E", ("x", "y"), parse("x = y"))])
        out = program.apply(Database.graph([(1, 1), (1, 2)]))
        assert out.edges == frozenset({(1, 2)})

    def test_set_relation(self):
        program = FOProgram([SetRelation("E", ("x", "y"), E("y", "x"))])
        out = program.apply(chain(3))
        assert out.edges == frozenset({(1, 0), (2, 1)})

    def test_conditional(self):
        program = FOProgram([
            Conditional(
                parse("exists x . E(x, x)"),
                then_branch=[SetRelation("E", ("x", "y"), parse("false"))],
                else_branch=[InsertWhere("E", ("x", "y"), parse("x = y & exists z . E(x, z)"))],
            )
        ])
        # a graph with a loop gets wiped
        assert program.apply(Database.graph([(1, 1), (1, 2)])).is_empty()
        # a loop-free graph gets loops added on sources
        out = program.apply(chain(2))
        assert (0, 0) in out.edges

    def test_conditional_test_must_be_sentence(self):
        with pytest.raises(FormulaError):
            Conditional(parse("E(x, y)"), [])

    def test_statements_see_earlier_effects(self):
        program = FOProgram([
            InsertTuple("E", 5, 5),
            DeleteWhere("E", ("x", "y"), parse("x = y")),
        ])
        out = program.apply(chain(2))
        assert (5, 5) not in out.edges

    def test_schema_mismatch(self):
        from repro.db.schema import Schema

        other = Database(Schema.of(R=1), {"R": [(1,)]})
        with pytest.raises(TransactionError):
            FOProgram([InsertTuple("E", 1, 2)]).apply(other)


class TestCompilation:
    def test_compile_produces_gamma_with_inserted_constants(self):
        program = FOProgram([InsertTuple("E", 100, 101)])
        compiled = program.compile()
        constants = {t.value for t in compiled.gamma if isinstance(t, Const)}
        assert constants == {100, 101}

    def test_compiled_agrees_simple_programs(self, graphs_3):
        programs = [
            FOProgram([DeleteWhere("E", ("x", "y"), E("y", "x"))], name="drop-sym"),
            FOProgram([InsertWhere("E", ("x", "y"), E("y", "x"))], name="symmetrise"),
            FOProgram([SetRelation("E", ("x", "y"), parse("E(x, y) & x != y"))], name="drop-loops"),
            FOProgram([
                InsertWhere("E", ("x", "y"), exists("z", make_and(E("x", "z"), E("z", "y"))))
            ], name="one-step-tc"),
            FOProgram([
                DeleteWhere("E", ("x", "y"), parse("x = y")),
                InsertWhere("E", ("x", "y"), E("y", "x")),
            ], name="two-step"),
        ]
        sample = graphs_3[:96]
        for program in programs:
            assert prerelation_agrees(program, sample), program.name

    def test_compiled_agrees_with_insertions_and_conditionals(self, graphs_2):
        programs = [
            FOProgram([InsertTuple("E", 100, 101)], name="insert-constant"),
            FOProgram([
                InsertTuple("E", 50, 50),
                InsertWhere("E", ("x", "y"), parse("E(y, x) & x != y")),
            ], name="insert-then-symmetrise"),
            FOProgram([
                Conditional(
                    parse("exists x y . E(x, y) & x != y"),
                    then_branch=[DeleteWhere("E", ("x", "y"), parse("x = y"))],
                    else_branch=[InsertTuple("E", 7, 7)],
                )
            ], name="conditional-cleanup"),
        ]
        for program in programs:
            assert prerelation_agrees(program, graphs_2), program.name

    def test_compiled_respects_statement_order(self):
        insert_then_delete = FOProgram([
            InsertWhere("E", ("x", "y"), E("y", "x")),
            DeleteWhere("E", ("x", "y"), parse("x = y")),
        ])
        delete_then_insert = FOProgram([
            DeleteWhere("E", ("x", "y"), parse("x = y")),
            InsertWhere("E", ("x", "y"), E("y", "x")),
        ])
        g = Database.graph([(1, 1), (1, 2)])
        assert insert_then_delete.apply(g) != delete_then_insert.apply(g) or True
        # compiled semantics must match operational semantics for both orders
        assert prerelation_agrees(insert_then_delete, [g])
        assert prerelation_agrees(delete_then_insert, [g])

    def test_max_quantifier_rank_exposed(self):
        program = FOProgram([
            InsertWhere("E", ("x", "y"), exists("z", make_and(E("x", "z"), E("z", "y"))))
        ])
        spec = PrerelationSpec.from_fo_program(program)
        assert spec.max_quantifier_rank() >= 1
