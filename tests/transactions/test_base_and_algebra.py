"""Tests for the transaction abstraction and relational-algebra transactions."""

import pytest

from repro.db import Database, chain, complete_graph, cycle, diagonal_graph
from repro.logic import parse
from repro.transactions import (
    AlgebraTransaction,
    ComposedTransaction,
    FunctionTransaction,
    GuardedTransaction,
    IdentityTransaction,
    Transaction,
    TransactionAbortedSignal,
    TransactionError,
    TransactionLanguage,
    complete_graph_transaction,
    copy_relation_transaction,
    diagonal_transaction,
    is_generic_on,
    tc_transaction,
)
from repro.db import algebra
from repro.db.schema import Schema


class TestTransactionBasics:
    def test_function_transaction(self):
        t = FunctionTransaction(lambda db: db.insert("E", (9, 9)), name="add-loop")
        result = t.apply(chain(2))
        assert (9, 9) in result.edges
        assert t.name == "add-loop"

    def test_function_transaction_type_check(self):
        t = FunctionTransaction(lambda db: "not a database")
        with pytest.raises(TransactionError):
            t.apply(chain(2))

    def test_identity(self):
        g = cycle(3)
        assert IdentityTransaction().apply(g) == g

    def test_composition(self):
        add_loop = FunctionTransaction(lambda db: db.insert("E", (9, 9)), name="loop")
        drop_all = FunctionTransaction(lambda db: Database.graph([]), name="clear")
        composed = add_loop.then(drop_all)
        assert composed.apply(chain(3)).is_empty()
        reversed_order = drop_all.then(add_loop)
        assert reversed_order.apply(chain(3)).edges == frozenset({(9, 9)})

    def test_callable_sugar(self):
        assert IdentityTransaction()(chain(2)) == chain(2)

    def test_preserves_per_database(self):
        constraint = parse("forall x . ~E(x, x)")
        assert IdentityTransaction().preserves(constraint, chain(3))
        add_loop = FunctionTransaction(lambda db: db.insert("E", (0, 0)), name="loop")
        assert not add_loop.preserves(constraint, chain(3))
        # vacuously preserved when the input violates the constraint already
        assert add_loop.preserves(constraint, Database.graph([(5, 5)]))


class TestGuardedTransaction:
    def test_guard_allows(self):
        t = GuardedTransaction(tc_transaction(), parse("exists x y . E(x, y)"))
        assert t.apply(chain(3)) == tc_transaction().apply(chain(3))

    def test_guard_aborts_with_exception(self):
        t = GuardedTransaction(tc_transaction(), parse("false"))
        with pytest.raises(TransactionAbortedSignal):
            t.apply(chain(3))

    def test_guard_aborts_to_identity(self):
        t = GuardedTransaction(tc_transaction(), parse("false"), on_abort="identity")
        assert t.apply(chain(3)) == chain(3)

    def test_invalid_abort_mode(self):
        with pytest.raises(ValueError):
            GuardedTransaction(IdentityTransaction(), parse("true"), on_abort="explode")

    def test_semantic_guard(self):
        class AlwaysFalse:
            def holds(self, db):
                return False

        t = GuardedTransaction(IdentityTransaction(), AlwaysFalse(), on_abort="identity")
        assert t.apply(chain(2)) == chain(2)


class TestGenericity:
    def test_tc_is_generic(self):
        assert is_generic_on(tc_transaction(), [chain(3), cycle(4)], extra_universe=[77])

    def test_constant_dependent_transaction_is_not_generic(self):
        def favours_zero(db):
            return db.insert("E", (0, 0)) if 0 in db.active_domain else db

        t = FunctionTransaction(favours_zero, name="favour-zero")
        assert not is_generic_on(t, [chain(3)], extra_universe=[50, 51])


class TestTransactionLanguage:
    def test_explicit_language(self):
        lang = TransactionLanguage("two", transactions=[IdentityTransaction(), tc_transaction()])
        assert len(lang) == 2
        assert lang[1].name == "transitive-closure"
        assert [t.name for t in lang] == ["identity", "transitive-closure"]

    def test_generated_language(self):
        def generator():
            i = 0
            while True:
                yield FunctionTransaction(lambda db, i=i: db, name=f"t{i}")
                i += 1

        lang = TransactionLanguage("generated", generator=generator)
        assert lang[3].name == "t3"
        assert [t.name for t in lang.prefix(2)] == ["t0", "t1"]
        with pytest.raises(TypeError):
            len(lang)

    def test_exactly_one_source_required(self):
        with pytest.raises(ValueError):
            TransactionLanguage("bad")
        with pytest.raises(ValueError):
            TransactionLanguage("bad", transactions=[], generator=lambda: iter(()))


class TestAlgebraTransactions:
    def test_diagonal_transaction(self, graphs_3):
        t1 = diagonal_transaction()
        for g in graphs_3[:64]:
            assert t1.apply(g) == diagonal_graph(g.active_domain)

    def test_complete_graph_transaction(self, graphs_3):
        t2 = complete_graph_transaction()
        for g in graphs_3[:64]:
            assert t2.apply(g) == complete_graph(g.active_domain)

    def test_empty_graph_maps_to_empty(self):
        assert diagonal_transaction().apply(Database.empty()).is_empty()
        assert complete_graph_transaction().apply(Database.empty()).is_empty()

    def test_unmentioned_relations_unchanged(self):
        schema = Schema.of(E=2, Keep=1)
        db = Database(schema, {"E": [(1, 2)], "Keep": [(7,)]})
        t = AlgebraTransaction(
            {"E": algebra.Relation("E").select(algebra.ColumnEqualsColumn(0, 1))},
            schema=schema,
        )
        out = t.apply(db)
        assert out.relation("Keep") == frozenset({(7,)})
        assert out.relation("E") == frozenset()

    def test_schema_checks(self):
        with pytest.raises(TransactionError):
            AlgebraTransaction({"Unknown": algebra.Relation("E")})
        t = AlgebraTransaction({"E": algebra.Relation("E").project(0)})
        with pytest.raises(TransactionError):
            t.apply(chain(2))  # arity mismatch: unary expression for binary E

    def test_copy_relation(self):
        schema = Schema.of(A=1, B=1)
        db = Database(schema, {"A": [(1,), (2,)], "B": []})
        t = copy_relation_transaction("A", "B", schema)
        assert t.apply(db).relation("B") == frozenset({(1,), (2,)})
        with pytest.raises(TransactionError):
            copy_relation_transaction("A", "E", Schema.of(A=1, E=2))

    def test_wrong_schema_rejected(self):
        other = Database(Schema.of(R=2), {"R": [(1, 2)]})
        with pytest.raises(TransactionError):
            diagonal_transaction().apply(other)

    def test_genericity_of_spj_transactions(self):
        assert is_generic_on(diagonal_transaction(), [chain(3), cycle(3)], extra_universe=[9])
        assert is_generic_on(complete_graph_transaction(), [chain(3)], extra_universe=[9])
